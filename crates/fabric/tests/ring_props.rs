//! Property tests for the consistent-hash ring: the minimal-disruption
//! contract the fabric's re-scatter correctness rests on.
//!
//! Over random node sets, removing one of N nodes must
//!
//! 1. **never** remap a key whose owner survived, and
//! 2. remap at most ~1.5/N of all keys (the removed node's share, with
//!    slack for virtual-node imbalance).

use dice_fabric::{HashRing, DEFAULT_VNODES};
use proptest::prelude::*;

const KEYS: u64 = 10_000;

/// Random membership: 2..=9 nodes with randomized (but unique) names,
/// plus the index of the node to remove.
fn arb_membership() -> impl Strategy<Value = (Vec<String>, usize)> {
    (2usize..10, any::<u16>()).prop_map(|(n, salt)| {
        let nodes: Vec<String> = (0..n).map(|i| format!("node-{salt}-{i}")).collect();
        let victim = usize::from(salt) % n;
        (nodes, victim)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn removal_is_minimal_disruption(membership in arb_membership()) {
        let (nodes, victim) = membership;
        let n = nodes.len();
        let mut ring = HashRing::new(DEFAULT_VNODES);
        for node in &nodes {
            prop_assert!(ring.add(node));
        }
        let before: Vec<String> = (0..KEYS)
            .map(|k| ring.owner(k).expect("non-empty ring").to_owned())
            .collect();

        let removed = nodes[victim].clone();
        prop_assert!(ring.remove(&removed));

        let mut remapped = 0u64;
        for (k, old_owner) in (0..KEYS).zip(&before) {
            let new_owner = ring.owner(k).expect("survivors remain");
            if *old_owner == removed {
                // The orphaned keys must land somewhere that survived.
                prop_assert_ne!(new_owner, removed.as_str());
                remapped += 1;
            } else {
                // A key whose owner survived never moves.
                prop_assert_eq!(new_owner, old_owner.as_str(), "key {} moved", k);
            }
        }

        // The removed node owned ~1/N of the keyspace; 1.5/N gives slack
        // for vnode imbalance while still catching any rehash-the-world
        // regression (which would remap ~(N-1)/N).
        let bound = (KEYS * 3) / (2 * n as u64);
        prop_assert!(
            remapped <= bound,
            "removing 1 of {} nodes remapped {} of {} keys (bound {})",
            n, remapped, KEYS, bound
        );
    }

    #[test]
    fn exclusion_equals_removal(membership in arb_membership()) {
        let (nodes, victim) = membership;
        // The coordinator retries failed cells via owner_excluding rather
        // than rebuilding the ring; both must agree everywhere.
        let mut ring = HashRing::new(DEFAULT_VNODES);
        for node in &nodes {
            ring.add(node);
        }
        let mut without = ring.clone();
        let removed = nodes[victim].clone();
        without.remove(&removed);
        for k in 0..KEYS {
            prop_assert_eq!(
                ring.owner_excluding(k, &[removed.as_str()]),
                without.owner(k)
            );
        }
    }
}
