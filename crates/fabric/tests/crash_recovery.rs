//! Coordinator crash recovery: the write-ahead sweep journal must make a
//! `kill -9` mid-sweep invisible in the final report.
//!
//! Two layers of proof:
//!
//! 1. A deterministic in-process test plants a journal holding an
//!    accepted spec and two of its four cell results, then binds a fresh
//!    coordinator on it — the resumed sweep must finish the two missing
//!    cells only and render a report byte-identical to a direct run.
//! 2. A subprocess test SIGKILLs a real `dice-fabric coordinator` the
//!    moment its journal shows a completed cell, restarts it on the same
//!    journal, and demands the same byte-identical report.

use std::io::BufRead;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use dice_fabric::{
    render_run_object, Coordinator, CoordinatorConfig, CoordinatorHandle, Journal, JournalRecord,
    Worker, WorkerConfig,
};
use dice_obs::Json;
use dice_runner::{Runner, RunnerConfig};
use dice_serve::net::NetConfig;
use dice_serve::{http_get, http_post, render_runs, sse_data_lines, sweep_key, SweepSpec};

/// A fresh scratch directory under the system temp dir.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dice-fabric-crash-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// The fast 4-cell spec used by the in-process tests.
fn spec_text(seed: u64) -> String {
    format!(
        r#"{{"orgs":["base","dice36"],"workloads":["gcc","mcf"],"scale":4096,"warmup":50,"measure":150,"seed":{seed}}}"#
    )
}

/// A 4-cell spec slow enough (~0.5s+ per cell in debug builds) that a
/// subprocess kill lands mid-sweep instead of after completion.
fn slow_spec_text(seed: u64) -> String {
    format!(
        r#"{{"orgs":["base","dice36"],"workloads":["gcc","mcf"],"scale":4096,"warmup":1000,"measure":20000,"seed":{seed}}}"#
    )
}

/// What a direct single-node `dice-runner` invocation renders for `spec`.
fn direct_report(spec: &str, cache: PathBuf) -> String {
    let spec = SweepSpec::parse(spec).expect("valid spec");
    let runner = Runner::new(RunnerConfig {
        jobs: 2,
        cache_dir: Some(cache),
        ..RunnerConfig::default()
    })
    .expect("runner");
    render_runs(&runner.run(spec.to_cells())).render()
}

struct TestWorker {
    addr: String,
    handle: dice_fabric::WorkerHandle,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl TestWorker {
    fn boot(cache: PathBuf) -> Self {
        let worker = Worker::bind(WorkerConfig {
            net: NetConfig {
                port: 0,
                conn_workers: 2,
                conn_backlog: 16,
            },
            runner: RunnerConfig {
                jobs: 1,
                cache_dir: Some(cache),
                ..RunnerConfig::default()
            },
            inject: None,
        })
        .expect("bind worker");
        let addr = worker.local_addr().expect("worker addr").to_string();
        let handle = worker.handle();
        let thread = std::thread::spawn(move || worker.run().expect("worker run"));
        TestWorker {
            addr,
            handle,
            thread: Some(thread),
        }
    }
}

impl Drop for TestWorker {
    fn drop(&mut self) {
        self.handle.drain();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

struct TestCoordinator {
    addr: String,
    handle: CoordinatorHandle,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl TestCoordinator {
    fn boot(workers: &[&TestWorker], journal: PathBuf) -> Self {
        let coordinator = Coordinator::bind(CoordinatorConfig {
            net: NetConfig {
                port: 0,
                conn_workers: 4,
                conn_backlog: 16,
            },
            workers: workers.iter().map(|w| w.addr.clone()).collect(),
            backoff: Duration::from_millis(10),
            cell_timeout: Duration::from_secs(30),
            journal: Some(journal),
            ..CoordinatorConfig::default()
        })
        .expect("bind coordinator");
        let addr = coordinator
            .local_addr()
            .expect("coordinator addr")
            .to_string();
        let handle = coordinator.handle();
        let thread = std::thread::spawn(move || coordinator.run().expect("coordinator run"));
        TestCoordinator {
            addr,
            handle,
            thread: Some(thread),
        }
    }

    fn shutdown(mut self) {
        self.handle.drain();
        if let Some(thread) = self.thread.take() {
            thread.join().expect("coordinator thread");
        }
    }
}

impl Drop for TestCoordinator {
    fn drop(&mut self) {
        self.handle.drain();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Polls `GET /v1/sweeps/:id` to `done`; returns the report bytes.
fn await_report(addr: &str, id: &str, budget: Duration) -> String {
    let deadline = Instant::now() + budget;
    loop {
        let status = http_get(addr, &format!("/v1/sweeps/{id}")).expect("GET status");
        assert_eq!(status.status, 200, "status body: {}", status.text());
        let doc = Json::parse(&status.text()).expect("status JSON");
        match doc.get("state").and_then(Json::as_str) {
            Some("done") => break,
            Some("failed") => panic!("sweep failed: {}", status.text()),
            _ => {
                assert!(Instant::now() < deadline, "sweep never finished");
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
    let report = http_get(addr, &format!("/v1/sweeps/{id}/report")).expect("GET report");
    assert_eq!(report.status, 200);
    report.text()
}

/// The `replayed` count from the sweep's `resumed` SSE event, if any.
fn replayed_count(addr: &str, id: &str) -> Option<u64> {
    let resp = http_get(addr, &format!("/v1/sweeps/{id}/events")).expect("GET events");
    assert_eq!(resp.status, 200);
    sse_data_lines(&resp.text()).iter().find_map(|line| {
        let doc = Json::parse(line).expect("event JSON");
        (doc.get("event").and_then(Json::as_str) == Some("resumed")).then(|| {
            doc.get("replayed")
                .and_then(Json::as_u64)
                .expect("replayed")
        })
    })
}

#[test]
fn planted_journal_resumes_only_missing_cells() {
    let spec_json = spec_text(31);
    let direct = direct_report(&spec_json, scratch("plant-direct"));
    let spec = SweepSpec::parse(&spec_json).expect("valid spec");
    let id = sweep_key(&spec.to_cells());
    let id_text = format!("{id:016x}");

    // Plant a journal: the sweep was accepted and two of its four cells
    // finished before the "crash". The outcomes come from a real runner
    // so they are exactly what a worker would have journaled.
    let journal_path = scratch("plant-journal").join("sweep.journal");
    let runner = Runner::new(RunnerConfig {
        jobs: 1,
        cache_dir: Some(scratch("plant-prerun")),
        ..RunnerConfig::default()
    })
    .expect("runner");
    let mut cells = spec.to_cells();
    let prerun: Vec<_> = cells.drain(..2).collect();
    let result = runner.run(prerun);
    assert_eq!(result.outcomes.len(), 2);
    {
        let (journal, recovery) = Journal::open(&journal_path).expect("open journal");
        assert!(recovery.records.is_empty());
        journal
            .append(&JournalRecord::Accepted {
                sweep: id,
                spec: spec.to_json(),
            })
            .expect("append accepted");
        for ((tag, workload), outcome) in &result.outcomes {
            journal
                .append(&JournalRecord::Cell {
                    sweep: id,
                    run: render_run_object(tag, workload, outcome),
                })
                .expect("append cell");
        }
    }

    // A coordinator bound on that journal resumes the sweep without any
    // POST: the job is queryable immediately and completes the two
    // missing cells on the live workers.
    let w0 = TestWorker::boot(scratch("plant-w0"));
    let w1 = TestWorker::boot(scratch("plant-w1"));
    let coordinator = TestCoordinator::boot(&[&w0, &w1], journal_path.clone());
    let report = await_report(&coordinator.addr, &id_text, Duration::from_secs(60));
    assert_eq!(report, direct, "resumed report diverged from direct run");
    assert_eq!(
        replayed_count(&coordinator.addr, &id_text),
        Some(2),
        "resume must replay exactly the journaled cells"
    );
    coordinator.shutdown();

    // The journal now tells the whole story: one accepted record, one
    // cell record per cell (replayed cells are never re-journaled), and
    // a clean done record.
    let (_, recovery) = Journal::open(&journal_path).expect("reopen journal");
    assert_eq!(recovery.dropped_bytes, 0);
    let mut accepted = 0;
    let mut cells_logged = Vec::new();
    let mut done = 0;
    for record in &recovery.records {
        match record {
            JournalRecord::Accepted { sweep, .. } => {
                assert_eq!(*sweep, id);
                accepted += 1;
            }
            JournalRecord::Cell { sweep, run } => {
                assert_eq!(*sweep, id);
                cells_logged.push(run.render());
            }
            JournalRecord::Done { sweep, degraded } => {
                assert_eq!(*sweep, id);
                assert_eq!(*degraded, None);
                done += 1;
            }
        }
    }
    assert_eq!(accepted, 1);
    assert_eq!(done, 1);
    assert_eq!(cells_logged.len(), 4, "one cell record per cell, no dupes");
}

#[test]
fn finished_sweeps_are_not_resurrected() {
    let spec = SweepSpec::parse(&spec_text(32)).expect("valid spec");
    let id = sweep_key(&spec.to_cells());
    let journal_path = scratch("done-journal").join("sweep.journal");
    {
        let (journal, _) = Journal::open(&journal_path).expect("open journal");
        journal
            .append(&JournalRecord::Accepted {
                sweep: id,
                spec: spec.to_json(),
            })
            .expect("append accepted");
        journal
            .append(&JournalRecord::Done {
                sweep: id,
                degraded: None,
            })
            .expect("append done");
    }
    let worker = TestWorker::boot(scratch("done-w0"));
    let coordinator = TestCoordinator::boot(&[&worker], journal_path);
    let resp = http_get(&coordinator.addr, &format!("/v1/sweeps/{id:016x}")).expect("GET status");
    assert_eq!(resp.status, 404, "finished sweep was resumed");
    coordinator.shutdown();
}

/// Spawns a `dice-fabric coordinator` subprocess and scrapes its bound
/// address off stdout.
fn spawn_coordinator(
    workers: &[&TestWorker],
    journal: &std::path::Path,
) -> (std::process::Child, String) {
    let mut cmd = std::process::Command::new(env!("CARGO_BIN_EXE_dice-fabric"));
    cmd.arg("coordinator").args(["--port", "0"]);
    for worker in workers {
        cmd.args(["--worker", &worker.addr]);
    }
    cmd.arg("--journal").arg(journal);
    cmd.args(["--scatter-width", "1", "--backoff-ms", "10"]);
    cmd.stdout(std::process::Stdio::piped());
    cmd.stderr(std::process::Stdio::null());
    let mut child = cmd.spawn().expect("spawn coordinator");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let line = lines
        .next()
        .expect("coordinator announced")
        .expect("read stdout");
    let addr = line
        .rsplit(' ')
        .next()
        .expect("address in announcement")
        .to_owned();
    assert!(
        line.contains("listening on"),
        "unexpected announcement: {line}"
    );
    (child, addr)
}

#[test]
fn sigkilled_coordinator_resumes_to_byte_identical_report() {
    let spec = slow_spec_text(33);
    let direct = direct_report(&spec, scratch("kill-direct"));
    let journal_path = scratch("kill-journal").join("sweep.journal");

    // Workers are in-process so they survive the coordinator's death —
    // exactly the production topology, where only the coordinator host
    // reboots.
    let w0 = TestWorker::boot(scratch("kill-w0"));
    let w1 = TestWorker::boot(scratch("kill-w1"));

    let (mut child, addr) = spawn_coordinator(&[&w0, &w1], &journal_path);
    let resp = http_post(&addr, "/v1/sweeps", &spec).expect("POST sweep");
    assert_eq!(resp.status, 202, "submit body: {}", resp.text());
    let id = Json::parse(&resp.text())
        .expect("submit JSON")
        .get("id")
        .and_then(Json::as_str)
        .expect("job id")
        .to_owned();

    // SIGKILL the moment the journal holds a completed cell: the sweep
    // is provably mid-flight (cells remain) and provably started (one
    // durable result exists).
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let bytes = std::fs::read(&journal_path).unwrap_or_default();
        if bytes
            .windows(b"\"record\":\"cell\"".len())
            .any(|w| w == b"\"record\":\"cell\"")
        {
            break;
        }
        assert!(Instant::now() < deadline, "no cell ever journaled");
        std::thread::sleep(Duration::from_millis(2));
    }
    child.kill().expect("SIGKILL coordinator");
    child.wait().expect("reap coordinator");

    // Restart on the same journal: the sweep must already exist (no
    // re-POST), finish the remaining cells, and render the same bytes a
    // direct run does.
    let (mut child, addr) = spawn_coordinator(&[&w0, &w1], &journal_path);
    let report = await_report(&addr, &id, Duration::from_secs(120));
    assert_eq!(report, direct, "post-crash report diverged from direct run");
    let replayed = replayed_count(&addr, &id).expect("resumed event");
    assert!(
        (1..4).contains(&replayed),
        "kill landed outside the mid-sweep window: replayed={replayed}"
    );
    child.kill().expect("stop second coordinator");
    child.wait().expect("reap second coordinator");

    // The journal survived two coordinators and one SIGKILL with exactly
    // one record per event: 1 accepted + 4 cells + 1 done, no torn tail.
    let (_, recovery) = Journal::open(&journal_path).expect("reopen journal");
    assert_eq!(recovery.dropped_bytes, 0, "torn tail after clean finish");
    let cells = recovery
        .records
        .iter()
        .filter(|r| matches!(r, JournalRecord::Cell { .. }))
        .count();
    let accepted = recovery
        .records
        .iter()
        .filter(|r| matches!(r, JournalRecord::Accepted { .. }))
        .count();
    let done = recovery
        .records
        .iter()
        .filter(|r| matches!(r, JournalRecord::Done { .. }))
        .count();
    assert_eq!((accepted, cells, done), (1, 4, 1), "journal record counts");
}
