//! The chaos matrix: every network fault kind, injected between a real
//! coordinator and real workers by the `dice-chaos` proxy, must leave
//! the fabric in exactly one of two states — a report **byte-identical**
//! to a direct single-node run, or a terminal sweep carrying a **typed
//! degraded outcome**. Never a hang, never a corrupt report.
//!
//! Schedules are seeded, so every run here is replayable. Seeds are
//! chosen (by deterministic search over the pure schedule function) so
//! the coordinator's boot probe — connection 0 through each proxy —
//! always passes clean; the chaos starts once the fleet is admitted.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dice_fabric::{
    chaos::scheduled_fault, ChaosConfig, ChaosProxy, Coordinator, CoordinatorConfig,
    CoordinatorHandle, NetFault, Worker, WorkerConfig, ALL_FAULTS,
};
use dice_obs::Json;
use dice_runner::{Runner, RunnerConfig};
use dice_serve::net::NetConfig;
use dice_serve::{http_get, http_post, render_runs, SweepSpec};

/// A fresh scratch directory under the system temp dir.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dice-fabric-chaos-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// The 4-cell spec under chaos; small enough that even a slow-read
/// schedule finishes the matrix quickly.
fn spec_text(seed: u64) -> String {
    format!(
        r#"{{"orgs":["base","dice36"],"workloads":["gcc","mcf"],"scale":4096,"warmup":50,"measure":150,"seed":{seed}}}"#
    )
}

/// What a direct single-node `dice-runner` invocation renders for `spec`.
fn direct_report(spec: &str, cache: PathBuf) -> String {
    let spec = SweepSpec::parse(spec).expect("valid spec");
    let runner = Runner::new(RunnerConfig {
        jobs: 2,
        cache_dir: Some(cache),
        ..RunnerConfig::default()
    })
    .expect("runner");
    render_runs(&runner.run(spec.to_cells())).render()
}

struct TestWorker {
    addr: String,
    handle: dice_fabric::WorkerHandle,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl TestWorker {
    fn boot(cache: PathBuf) -> Self {
        let worker = Worker::bind(WorkerConfig {
            net: NetConfig {
                port: 0,
                conn_workers: 2,
                conn_backlog: 16,
            },
            runner: RunnerConfig {
                jobs: 1,
                cache_dir: Some(cache),
                ..RunnerConfig::default()
            },
            inject: None,
        })
        .expect("bind worker");
        let addr = worker.local_addr().expect("worker addr").to_string();
        let handle = worker.handle();
        let thread = std::thread::spawn(move || worker.run().expect("worker run"));
        TestWorker {
            addr,
            handle,
            thread: Some(thread),
        }
    }
}

impl Drop for TestWorker {
    fn drop(&mut self) {
        self.handle.drain();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

struct TestProxy {
    addr: String,
    proxy: Arc<ChaosProxy>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl TestProxy {
    fn boot(config: ChaosConfig) -> Self {
        let proxy = Arc::new(ChaosProxy::bind(config).expect("bind proxy"));
        let addr = proxy.local_addr().expect("proxy addr").to_string();
        let runner = Arc::clone(&proxy);
        let thread = std::thread::spawn(move || runner.run().expect("proxy run"));
        TestProxy {
            addr,
            proxy,
            thread: Some(thread),
        }
    }
}

impl Drop for TestProxy {
    fn drop(&mut self) {
        self.proxy.handle().drain();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// The first seed at or above `start` whose schedule leaves connection 0
/// — the coordinator's boot probe — clean. Pure search over the pure
/// schedule function: deterministic and replayable.
fn clean_boot_seed(template: &ChaosConfig, start: u64) -> u64 {
    (start..start + 100_000)
        .find(|&seed| {
            let config = ChaosConfig {
                seed,
                ..template.clone()
            };
            scheduled_fault(&config, 0).is_none()
        })
        .expect("a clean-boot seed exists")
}

/// The first seed at or above `start` whose schedule leaves connection 0
/// clean and faults connections 1..=40 — enough to cover every dispatch
/// and probe a no-retry 4-cell sweep can make. A guaranteed storm.
fn storm_seed(template: &ChaosConfig, start: u64) -> u64 {
    (start..start + 1_000_000)
        .find(|&seed| {
            let config = ChaosConfig {
                seed,
                ..template.clone()
            };
            scheduled_fault(&config, 0).is_none()
                && (1..=40).all(|idx| scheduled_fault(&config, idx).is_some())
        })
        .expect("a storm seed exists")
}

/// Boots a coordinator whose only routes to `workers` run through
/// per-worker chaos proxies seeded off `template`.
fn boot_chaos_coordinator(
    workers: &[&TestWorker],
    proxies: &[&TestProxy],
    hedge_after: Option<Duration>,
    retry_rounds: usize,
) -> TestCoordinator {
    assert_eq!(workers.len(), proxies.len());
    let coordinator = Coordinator::bind(CoordinatorConfig {
        net: NetConfig {
            port: 0,
            conn_workers: 4,
            conn_backlog: 16,
        },
        workers: proxies.iter().map(|p| p.addr.clone()).collect(),
        backoff: Duration::from_millis(10),
        backoff_cap: Duration::from_millis(200),
        cell_timeout: Duration::from_secs(15),
        retry_rounds,
        hedge_after,
        ..CoordinatorConfig::default()
    })
    .expect("bind coordinator");
    let addr = coordinator
        .local_addr()
        .expect("coordinator addr")
        .to_string();
    let handle = coordinator.handle();
    let thread = std::thread::spawn(move || coordinator.run().expect("coordinator run"));
    TestCoordinator {
        addr,
        handle,
        thread: Some(thread),
    }
}

struct TestCoordinator {
    addr: String,
    handle: CoordinatorHandle,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl TestCoordinator {
    fn shutdown(mut self) {
        self.handle.drain();
        if let Some(thread) = self.thread.take() {
            thread.join().expect("coordinator thread");
        }
    }
}

impl Drop for TestCoordinator {
    fn drop(&mut self) {
        self.handle.drain();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Submits `spec` and polls to a terminal state within `budget` — the
/// no-hang half of the chaos invariant. Returns the report bytes and
/// the status document's typed `degraded` reason, if any.
fn run_under_chaos(addr: &str, spec: &str, budget: Duration) -> (String, Option<String>) {
    let resp = http_post(addr, "/v1/sweeps", spec).expect("POST sweep");
    assert_eq!(resp.status, 202, "submit body: {}", resp.text());
    let id = Json::parse(&resp.text())
        .expect("submit JSON")
        .get("id")
        .and_then(Json::as_str)
        .expect("job id")
        .to_owned();
    let deadline = Instant::now() + budget;
    let degraded = loop {
        let status = http_get(addr, &format!("/v1/sweeps/{id}")).expect("GET status");
        assert_eq!(status.status, 200);
        let doc = Json::parse(&status.text()).expect("status JSON");
        match doc.get("state").and_then(Json::as_str) {
            Some("done") => {
                break doc
                    .get("degraded")
                    .and_then(Json::as_str)
                    .map(str::to_owned)
            }
            Some("failed") => panic!("sweep failed under chaos: {}", status.text()),
            _ => {
                assert!(
                    Instant::now() < deadline,
                    "sweep hung under chaos (no terminal state in {budget:?})"
                );
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    };
    let report = http_get(addr, &format!("/v1/sweeps/{id}/report")).expect("GET report");
    assert_eq!(report.status, 200, "terminal sweep must render a report");
    (report.text(), degraded)
}

/// The chaos invariant, asserted: the run either matched the direct
/// bytes exactly, or terminated degraded with fabric-synthesized (and
/// clearly marked) cell errors. A report that is neither is corrupt.
fn assert_chaos_invariant(context: &str, report: &str, degraded: Option<&str>, direct: &str) {
    match degraded {
        None => assert_eq!(
            report, direct,
            "{context}: clean completion must be byte-identical"
        ),
        Some(reason) => {
            assert!(
                reason.contains("no live worker"),
                "{context}: degraded reason is untyped: {reason}"
            );
            assert!(
                report.contains("fabric:"),
                "{context}: degraded report lacks synthetic markers: {report}"
            );
        }
    }
}

#[test]
fn clean_proxies_preserve_byte_identity() {
    let spec = spec_text(41);
    let direct = direct_report(&spec, scratch("clean-direct"));
    let w0 = TestWorker::boot(scratch("clean-w0"));
    let w1 = TestWorker::boot(scratch("clean-w1"));
    let template = ChaosConfig {
        percent: 0,
        io_timeout: Duration::from_secs(10),
        ..ChaosConfig::default()
    };
    let p0 = TestProxy::boot(ChaosConfig {
        upstream: w0.addr.clone(),
        ..template.clone()
    });
    let p1 = TestProxy::boot(ChaosConfig {
        upstream: w1.addr.clone(),
        ..template
    });
    let coordinator = boot_chaos_coordinator(&[&w0, &w1], &[&p0, &p1], None, 3);
    let (report, degraded) = run_under_chaos(&coordinator.addr, &spec, Duration::from_secs(60));
    assert_eq!(degraded, None, "a clean pipe must not degrade");
    assert_eq!(report, direct, "proxy altered bytes at percent=0");
    coordinator.shutdown();
}

#[test]
fn every_fault_kind_terminates_with_identity_or_typed_degrade() {
    let spec = spec_text(42);
    let direct = direct_report(&spec, scratch("matrix-direct"));
    for (i, fault) in ALL_FAULTS.into_iter().enumerate() {
        let name = fault.as_str();
        let w0 = TestWorker::boot(scratch(&format!("matrix-{name}-w0")));
        let w1 = TestWorker::boot(scratch(&format!("matrix-{name}-w1")));
        let template = ChaosConfig {
            faults: vec![fault],
            percent: 45,
            latency: Duration::from_millis(150),
            io_timeout: Duration::from_secs(10),
            ..ChaosConfig::default()
        };
        let p0 = TestProxy::boot(ChaosConfig {
            upstream: w0.addr.clone(),
            seed: clean_boot_seed(&template, 100 * i as u64 + 1),
            ..template.clone()
        });
        let p1 = TestProxy::boot(ChaosConfig {
            upstream: w1.addr.clone(),
            seed: clean_boot_seed(&template, 100 * i as u64 + 51),
            ..template
        });
        let coordinator = boot_chaos_coordinator(&[&w0, &w1], &[&p0, &p1], None, 3);
        let (report, degraded) =
            run_under_chaos(&coordinator.addr, &spec, Duration::from_secs(120));
        assert_chaos_invariant(name, &report, degraded.as_deref(), &direct);
        coordinator.shutdown();
    }
}

#[test]
fn full_fault_mix_with_hedging_terminates() {
    let spec = spec_text(43);
    let direct = direct_report(&spec, scratch("mix-direct"));
    let w0 = TestWorker::boot(scratch("mix-w0"));
    let w1 = TestWorker::boot(scratch("mix-w1"));
    let template = ChaosConfig {
        percent: 35,
        latency: Duration::from_millis(150),
        io_timeout: Duration::from_secs(10),
        ..ChaosConfig::default()
    };
    let p0 = TestProxy::boot(ChaosConfig {
        upstream: w0.addr.clone(),
        seed: clean_boot_seed(&template, 1_001),
        ..template.clone()
    });
    let p1 = TestProxy::boot(ChaosConfig {
        upstream: w1.addr.clone(),
        seed: clean_boot_seed(&template, 2_001),
        ..template
    });
    // Hedging on: an unanswered dispatch gets a duplicate on the other
    // worker after 300ms, which is exactly the medicine for latency and
    // slow-read schedules.
    let coordinator = boot_chaos_coordinator(
        &[&w0, &w1],
        &[&p0, &p1],
        Some(Duration::from_millis(300)),
        3,
    );
    let (report, degraded) = run_under_chaos(&coordinator.addr, &spec, Duration::from_secs(120));
    assert_chaos_invariant("mix", &report, degraded.as_deref(), &direct);
    coordinator.shutdown();
}

#[test]
fn refuse_storm_degrades_with_typed_outcome() {
    // A single worker behind a proxy that refuses every connection after
    // the boot probe, and a coordinator with no retry rounds: every cell
    // must come back as a fabric-synthesized failure, the sweep must
    // still reach `done`, and the degraded reason must be typed.
    let spec = spec_text(44);
    let worker = TestWorker::boot(scratch("storm-w0"));
    let template = ChaosConfig {
        faults: vec![NetFault::Refuse],
        percent: 99,
        io_timeout: Duration::from_secs(5),
        ..ChaosConfig::default()
    };
    let proxy = TestProxy::boot(ChaosConfig {
        upstream: worker.addr.clone(),
        seed: storm_seed(&template, 1),
        ..template
    });
    let coordinator = boot_chaos_coordinator(&[&worker], &[&proxy], None, 0);
    let (report, degraded) = run_under_chaos(&coordinator.addr, &spec, Duration::from_secs(60));
    let reason = degraded.expect("a total refuse storm must degrade the sweep");
    assert!(
        reason.contains("4 of 4 cells"),
        "degraded reason should count the synthetic cells: {reason}"
    );
    assert_eq!(
        report.matches("fabric:").count(),
        4,
        "every cell must carry the synthetic marker: {report}"
    );

    // The breaker state is operator-visible: the storm must have opened
    // (and possibly exhausted) w0's breaker, and the membership document
    // says so.
    let resp = http_get(&coordinator.addr, "/v1/fabric/membership").expect("GET membership");
    let doc = Json::parse(&resp.text()).expect("membership JSON");
    let nodes = doc.get("nodes").and_then(Json::as_arr).expect("nodes");
    let opened = nodes[0]
        .get("breaker_opened")
        .and_then(Json::as_u64)
        .expect("breaker_opened");
    assert!(opened > 0, "storm never opened the breaker: {doc:?}");
    coordinator.shutdown();
}
