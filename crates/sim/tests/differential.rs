//! Differential determinism: the timing-wheel engine (with dispatch
//! chaining) must produce **byte-identical** `RunReport` JSON to the
//! original heap-based reference engine, across the experiment matrix and
//! under randomized cells.
//!
//! This is the contract that lets the engine rewrite ship without touching
//! a single recorded result: the wheel preserves the heap's `(time, seq)`
//! pop order, and chaining only runs an event early when it provably would
//! have popped next anyway.

use dice_cache::L3FetchPolicy;
use dice_core::Organization;
use dice_sim::{SimConfig, System, WorkloadSet};
use dice_workloads::spec_table;
use proptest::prelude::*;

fn spec(name: &str) -> dice_workloads::WorkloadSpec {
    spec_table().into_iter().find(|w| w.name == name).unwrap()
}

/// Runs the same cell on both engines and returns (wheel, reference) JSON.
fn both_engines(cfg: &SimConfig, wl: &WorkloadSet) -> (String, String) {
    let wheel = System::new(cfg.clone(), wl).run().to_json().render();
    let mut sys = System::new(cfg.clone(), wl);
    sys.use_reference_engine();
    let reference = sys.run().to_json().render();
    (wheel, reference)
}

fn assert_identical(cfg: &SimConfig, wl: &WorkloadSet, label: &str) {
    let (wheel, reference) = both_engines(cfg, wl);
    assert_eq!(
        wheel, reference,
        "engine divergence in cell {label} (wheel vs reference)"
    );
}

#[test]
fn every_organization_is_engine_identical() {
    for org in [
        Organization::UncompressedAlloy,
        Organization::CompressedTsi,
        Organization::CompressedNsi,
        Organization::CompressedBai,
        Organization::Dice { threshold: 36 },
        Organization::Scc,
    ] {
        let cfg = SimConfig::scaled(org, 1024).with_records(1_500, 3_000);
        let wl = WorkloadSet::rate(spec("mcf"), 7);
        assert_identical(&cfg, &wl, &format!("{org:?}/mcf"));
    }
}

#[test]
fn every_workload_class_is_engine_identical() {
    // One representative per access-pattern class: latency-bound pointer
    // chasing (mcf), cache-friendly (gcc), compressible spatial (cc_twi),
    // incompressible streaming (lbm).
    for wl in ["mcf", "gcc", "cc_twi", "lbm"] {
        let cfg = SimConfig::scaled(Organization::Dice { threshold: 36 }, 1024)
            .with_records(1_500, 3_000);
        assert_identical(&cfg, &WorkloadSet::rate(spec(wl), 7), wl);
    }
}

#[test]
fn mixed_workloads_are_engine_identical() {
    let cfg =
        SimConfig::scaled(Organization::Dice { threshold: 36 }, 1024).with_records(1_000, 2_000);
    let specs = vec![
        spec("mcf"),
        spec("lbm"),
        spec("gcc"),
        spec("libq"),
        spec("astar"),
        spec("wrf"),
        spec("milc"),
        spec("xalanc"),
    ];
    assert_identical(&cfg, &WorkloadSet::mix("mixT", specs, 3), "mixT");
}

#[test]
fn observability_knobs_are_engine_identical() {
    // Interval sampling interacts with event times (window closes are
    // driven by pop order), and tracing captures per-event latencies —
    // both must see the exact same event sequence.
    let mut cfg =
        SimConfig::scaled(Organization::Dice { threshold: 36 }, 1024).with_records(1_500, 3_000);
    cfg.obs.interval_cycles = 25_000;
    cfg.obs.trace_capacity = 512;
    assert_identical(&cfg, &WorkloadSet::rate(spec("gcc"), 7), "sampled+traced");

    let mut cfg =
        SimConfig::scaled(Organization::Dice { threshold: 36 }, 1024).with_records(1_500, 3_000);
    cfg.obs.trace_level = dice_obs::TraceLevel::Decisions;
    assert_identical(&cfg, &WorkloadSet::rate(spec("gcc"), 7), "decisions");
}

#[test]
fn prefetch_policies_are_engine_identical() {
    // Prefetch events share dispatch times with the records that spawn
    // them — the tie-break contract's hardest customer.
    for policy in [L3FetchPolicy::NextLine, L3FetchPolicy::Wide128] {
        let mut cfg = SimConfig::scaled(Organization::Dice { threshold: 36 }, 1024)
            .with_records(1_500, 3_000);
        cfg.l3_fetch = policy;
        assert_identical(
            &cfg,
            &WorkloadSet::rate(spec("cc_twi"), 7),
            &format!("{policy:?}"),
        );
    }
}

#[test]
fn audit_and_pairing_knobs_are_engine_identical() {
    let cfg = SimConfig::scaled(Organization::Dice { threshold: 36 }, 1024)
        .with_records(1_500, 3_000)
        .with_audit(512);
    assert_identical(&cfg, &WorkloadSet::rate(spec("gcc"), 7), "audited");

    let mut cfg =
        SimConfig::scaled(Organization::Dice { threshold: 36 }, 1024).with_records(1_500, 3_000);
    cfg.install_pair_in_l3 = false;
    assert_identical(&cfg, &WorkloadSet::rate(spec("cc_twi"), 7), "no-pair-fill");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random cells: any organization, workload, seed and window shape.
    #[test]
    fn random_cells_are_engine_identical(
        org_idx in 0usize..6,
        wl_idx in 0usize..4,
        seed in 0u64..1000,
        warmup in 200u64..1200,
        measure in 500u64..2500,
        interval_idx in 0usize..3,
    ) {
        let org = [
            Organization::UncompressedAlloy,
            Organization::CompressedTsi,
            Organization::CompressedNsi,
            Organization::CompressedBai,
            Organization::Dice { threshold: 36 },
            Organization::Scc,
        ][org_idx];
        let wl = ["mcf", "gcc", "cc_twi", "lbm"][wl_idx];
        let mut cfg = SimConfig::scaled(org, 1024).with_records(warmup, measure);
        cfg.obs.interval_cycles = [0u64, 10_000, 50_000][interval_idx];
        let wlset = WorkloadSet::rate(spec(wl), seed);
        let (wheel, reference) = both_engines(&cfg, &wlset);
        prop_assert_eq!(wheel, reference);
    }
}
