//! Scenario tests for the system simulator: configuration sensitivity,
//! fetch policies and organization coverage, each on a small fast system.

use dice_cache::L3FetchPolicy;
use dice_core::{DramCacheConfig, Organization, TagVariant};
use dice_sim::{geomean, RunReport, SimConfig, System, WorkloadSet};
use dice_workloads::spec_table;

fn spec(name: &str) -> dice_workloads::WorkloadSpec {
    spec_table().into_iter().find(|w| w.name == name).unwrap()
}

fn base_cfg(org: Organization) -> SimConfig {
    SimConfig::scaled(org, 1024).with_records(3_000, 6_000)
}

fn run(cfg: SimConfig, wl: &str) -> RunReport {
    System::new(cfg, &WorkloadSet::rate(spec(wl), 11)).run()
}

#[test]
fn all_organizations_complete() {
    for org in [
        Organization::UncompressedAlloy,
        Organization::CompressedTsi,
        Organization::CompressedNsi,
        Organization::CompressedBai,
        Organization::Dice { threshold: 36 },
        Organization::Scc,
    ] {
        let r = run(base_cfg(org), "soplex");
        assert!(r.cycles > 0, "{org:?}");
        assert!(r.l4.reads > 0, "{org:?}");
    }
}

#[test]
fn half_latency_l4_is_faster() {
    let base = run(base_cfg(Organization::UncompressedAlloy), "gcc");
    let fast = run(
        base_cfg(Organization::UncompressedAlloy).with_half_l4_latency(),
        "gcc",
    );
    assert!(fast.weighted_speedup(&base) > 1.0);
}

#[test]
fn more_bandwidth_never_hurts() {
    for wl in ["gcc", "mcf"] {
        let base = run(base_cfg(Organization::UncompressedAlloy), wl);
        let wide = run(
            base_cfg(Organization::UncompressedAlloy).with_double_l4_bandwidth(),
            wl,
        );
        assert!(wide.weighted_speedup(&base) > 0.99, "{wl}");
    }
}

#[test]
fn double_capacity_helps_capacity_bound_workloads() {
    // omnetpp's footprint exceeds the cache → extra capacity pays.
    let base = run(base_cfg(Organization::UncompressedAlloy), "omnetpp");
    let big = run(
        base_cfg(Organization::UncompressedAlloy).with_double_l4_capacity(),
        "omnetpp",
    );
    assert!(big.weighted_speedup(&base) > 1.0);
}

#[test]
fn prefetch_policies_generate_extra_traffic() {
    let demand = run(base_cfg(Organization::UncompressedAlloy), "gcc");
    let mut cfg = base_cfg(Organization::UncompressedAlloy);
    cfg.l3_fetch = L3FetchPolicy::NextLine;
    let nl = run(cfg, "gcc");
    assert!(
        nl.l4.reads > demand.l4.reads,
        "next-line prefetch must add L4 reads: {} vs {}",
        nl.l4.reads,
        demand.l4.reads
    );
    let mut cfg = base_cfg(Organization::UncompressedAlloy);
    cfg.l3_fetch = L3FetchPolicy::Wide128;
    let wide = run(cfg, "gcc");
    assert!(wide.l4.reads > demand.l4.reads);
}

#[test]
fn knl_variant_issues_more_probes_than_alloy() {
    let mk = |variant| {
        let mut cfg = base_cfg(Organization::Dice { threshold: 36 });
        cfg.l4 = DramCacheConfig {
            tag_variant: variant,
            ..cfg.l4
        };
        cfg
    };
    // mcf misses a lot; KNL pays both-location checks on those misses.
    let alloy = run(mk(TagVariant::Alloy), "mcf");
    let knl = run(mk(TagVariant::Knl), "mcf");
    assert!(knl.l4.second_probes > alloy.l4.second_probes);
    // ...but contents and hit behaviour stay comparable.
    let dh = (knl.l4.hit_rate() - alloy.l4.hit_rate()).abs();
    assert!(dh < 0.05, "hit rates diverged by {dh}");
}

#[test]
fn nsi_is_spatial_but_fragile() {
    // NSI delivers free pair lines like BAI...
    let nsi = run(base_cfg(Organization::CompressedNsi), "gcc");
    assert!(nsi.l4.free_lines > 0);
    // ...but on incompressible data it thrashes harder than the baseline.
    let base = run(base_cfg(Organization::UncompressedAlloy), "lbm");
    let nsi_lbm = run(base_cfg(Organization::CompressedNsi), "lbm");
    assert!(nsi_lbm.weighted_speedup(&base) < 1.0);
}

#[test]
fn threshold_extremes_degenerate_correctly() {
    // Threshold 0 → always TSI; threshold 64 → always BAI (§6.2).
    let t0 = run(base_cfg(Organization::Dice { threshold: 0 }), "soplex");
    assert_eq!(t0.l4.installs_bai, 0, "threshold 0 must never choose BAI");
    let t64 = run(base_cfg(Organization::Dice { threshold: 64 }), "soplex");
    assert_eq!(t64.l4.installs_tsi, 0, "threshold 64 must never choose TSI");
}

#[test]
fn ltt_size_trades_accuracy(/* §5.3 */) {
    let mut small = base_cfg(Organization::Dice { threshold: 36 });
    small.l4.ltt_entries = 64;
    let mut big = base_cfg(Organization::Dice { threshold: 36 });
    big.l4.ltt_entries = 8192;
    let rs = System::new(small, &WorkloadSet::rate(spec("soplex"), 11)).run();
    let rb = System::new(big, &WorkloadSet::rate(spec("soplex"), 11)).run();
    assert!(
        rb.cip_accuracy >= rs.cip_accuracy - 0.02,
        "bigger LTT should not predict much worse"
    );
}

#[test]
fn geomean_helper_matches_manual_math() {
    assert!((geomean(&[1.1, 1.2, 0.9]) - (1.1f64 * 1.2 * 0.9).powf(1.0 / 3.0)).abs() < 1e-12);
}

#[test]
fn per_core_reports_are_complete_for_mixes() {
    let specs = vec![
        spec("mcf"),
        spec("lbm"),
        spec("soplex"),
        spec("milc"),
        spec("gcc"),
        spec("libq"),
        spec("Gems"),
        spec("omnetpp"),
    ];
    let cfg = base_cfg(Organization::Dice { threshold: 36 });
    let r = System::new(cfg, &WorkloadSet::mix("testmix", specs, 5)).run();
    assert_eq!(r.core_ipc().len(), 8);
    // Cores run different programs: their IPCs should not all be equal.
    let ipc = r.core_ipc();
    assert!(ipc.iter().any(|&x| (x - ipc[0]).abs() > 1e-6));
}
