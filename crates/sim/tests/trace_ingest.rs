//! Streamed-trace equivalence: a sweep cell driven by a bounded-memory
//! `.dtf` stream must produce a report byte-identical to the same records
//! run from memory — both via the binding's preload mode and via explicit
//! [`ReplaySource`]s through [`System::with_sources`].

use dice_core::Organization;
use dice_ingest::{DtfWriter, TraceBinding};
use dice_sim::{SimConfig, System, WorkloadSet};
use dice_workloads::{
    spec_table, MixDataModel, RecordSource, ReplaySource, TraceGen, TraceRecord, WorkloadSpec,
};

fn spec(name: &str) -> WorkloadSpec {
    spec_table()
        .into_iter()
        .find(|s| s.name == name)
        .expect("spec exists")
}

fn small_cfg(org: Organization) -> SimConfig {
    SimConfig::scaled(org, 512).with_records(400, 1200)
}

/// Packs a synthetic multi-core trace and returns the per-core records.
fn pack_trace(path: &std::path::Path, cores: usize, per_core: u64) -> Vec<Vec<TraceRecord>> {
    let s = spec("mcf");
    let mut w = DtfWriter::create(path, cores as u32, true)
        .unwrap()
        // Small frames force many refills and other-core skips.
        .with_frame_records(257);
    let mut all = Vec::new();
    for core in 0..cores {
        let mut gen = TraceGen::with_scale(&s, core as u32, 0xd1ce, 512);
        let recs: Vec<TraceRecord> = (0..per_core).map(|_| gen.next_record()).collect();
        for r in &recs {
            w.push_record(core as u32, *r).unwrap();
        }
        all.push(recs);
    }
    w.finish().unwrap();
    all
}

#[test]
fn streamed_trace_report_is_byte_identical_to_in_memory() {
    let dir = std::env::temp_dir().join("dice-sim-trace-ingest");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("equiv-{}.dtf", std::process::id()));
    let per_core = pack_trace(&path, 8, 2000);

    let binding = TraceBinding::open(&path).unwrap();
    let s = spec("mcf");

    for org in [
        Organization::UncompressedAlloy,
        Organization::Dice { threshold: 36 },
    ] {
        let cfg = small_cfg(org);

        // 1. Streamed: bounded-memory frame streaming straight off disk.
        let streamed = WorkloadSet::traced("mcf-trace", s.clone(), 7, binding.clone());
        let streamed_report = System::new(cfg.clone(), &streamed).run().to_json().render();

        // 2. Preload mode: same binding, records materialized up front.
        let preload = WorkloadSet::traced(
            "mcf-trace",
            s.clone(),
            7,
            binding.clone().with_preload(true),
        );
        let preload_report = System::new(cfg.clone(), &preload).run().to_json().render();

        // 3. Fully manual in-memory replay through with_sources, using
        //    the same data model System::new derives.
        let sources: Vec<Box<dyn RecordSource>> = per_core
            .iter()
            .map(|recs| Box::new(ReplaySource::new(recs.clone())) as Box<dyn RecordSource>)
            .collect();
        let data = MixDataModel::new(vec![s.values; cfg.cores], 7 ^ 0xda7a);
        let manual_report = System::with_sources(cfg, "mcf-trace", sources, data)
            .run()
            .to_json()
            .render();

        assert_eq!(
            streamed_report, preload_report,
            "{org:?}: streamed vs preload"
        );
        assert_eq!(
            streamed_report, manual_report,
            "{org:?}: streamed vs manual replay"
        );
    }
}

/// A trace recorded on fewer streams than the simulated core count maps
/// `core % file_cores` — still deterministic and identical between
/// streamed and preloaded modes.
#[test]
fn narrow_trace_fans_out_over_more_cores() {
    let dir = std::env::temp_dir().join("dice-sim-trace-ingest");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("narrow-{}.dtf", std::process::id()));
    pack_trace(&path, 2, 1500);

    let binding = TraceBinding::open(&path).unwrap();
    assert_eq!(binding.cores(), 2);
    let s = spec("lbm");
    let cfg = small_cfg(Organization::Dice { threshold: 36 });

    let streamed = WorkloadSet::traced("narrow", s.clone(), 9, binding.clone());
    let preload = WorkloadSet::traced("narrow", s, 9, binding.with_preload(true));
    assert_eq!(
        System::new(cfg.clone(), &streamed).run().to_json().render(),
        System::new(cfg, &preload).run().to_json().render(),
    );
}
