//! Verifies the simulator's steady-state record loop — dispatch, L3
//! access, L4 demand/fill/writeback events, completion-window update —
//! performs **zero heap allocations** once warmed.
//!
//! The contract is held by: the timing wheel's capacity-reusing slot
//! deques, `CoreModel`'s inline sorted completion window, the reusable
//! L3-writeback scratch buffer, and `extra_fetch`'s option-not-vec
//! prefetch API. A counting `#[global_allocator]` wraps the system
//! allocator; after warmup (which grows every buffer to steady-state
//! capacity and memoizes the workload's data pages) measured windows of
//! records must leave the counter untouched.
//!
//! This file intentionally contains a single test: a sibling test running
//! on another thread would bump the shared counter and fail the assertion
//! spuriously.

use std::alloc::{GlobalAlloc, Layout, System as SystemAlloc};
use std::sync::atomic::{AtomicU64, Ordering};

use dice_core::Organization;
use dice_sim::{SimConfig, System, WorkloadSet};
use dice_workloads::spec_table;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        SystemAlloc.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        SystemAlloc.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        SystemAlloc.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_record_loop_is_allocation_free() {
    let spec = spec_table().into_iter().find(|w| w.name == "mcf").unwrap();
    let cfg = SimConfig::scaled(Organization::Dice { threshold: 36 }, 1024);
    let mut sys = System::new(cfg, &WorkloadSet::rate(spec, 0xd1ce));

    // Warmup: fill the caches, memoize the workload's data pages, grow the
    // wheel's node pool to the peak in-flight event count and the
    // writeback scratch to its high-water mark, and make each touched L4
    // set take its one-shot entry reservation. The only cold-start
    // allocation left afterwards is a set's *first-ever* touch (bounded by
    // the set universe); the long warmup runs that tail dry. The run is
    // fully deterministic (seeded workload), so the outcome is too.
    sys.drive(200_000);
    sys.drive(10_000);

    // The counter is process-global, so the test harness's own threads can
    // sporadically allocate during a window. A hot-path allocation would
    // taint *every* window with thousands of counts; harness noise is rare
    // and small, so requiring one clean window out of several is exact.
    let mut leaks = Vec::new();
    for _ in 0..5 {
        let before = allocations();
        sys.drive(2_000);
        let after = allocations();
        if after == before {
            return;
        }
        leaks.push(after - before);
    }
    panic!("steady-state record loop allocated in every measured window: {leaks:?}");
}
