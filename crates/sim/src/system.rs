//! The deterministic event loop tying cores, L3, L4 and memory together.
//!
//! # Event engine
//!
//! Events flow through a hierarchical timing wheel ([`crate::wheel`])
//! instead of a binary heap, with two contracts the old heap implied and
//! this engine makes explicit:
//!
//! * **Tie-break** — events due at the same cycle execute in schedule
//!   (FIFO) order, tracked by a monotone sequence number.
//! * **Chaining** — when handling an event produces the same core's next
//!   `Dispatch` and that dispatch is due strictly before every queued
//!   event, it runs inline instead of round-tripping the queue. This is
//!   execution-order-equivalent to queueing it (it would pop next
//!   anyway), so reports stay byte-identical; in single-core cells it
//!   short-circuits the majority of queue traffic (L3-hit bursts never
//!   touch the queue at all).
//!
//! The original heap loop survives as a test-only *reference engine*
//! ([`System::use_reference_engine`]); `tests/differential.rs` holds the
//! two byte-identical across the experiment matrix.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};

use dice_cache::{HierarchyConfig, SramHierarchy};
use dice_core::{DramCacheController, FaultKind, FaultPlan, L4Stats, LyingSizes, Probe, SetIndex};
use dice_dram::{AccessKind, DramDevice, DramStats, Location};
use dice_obs::{LatencyPanel, RequestClass, SpanId, TraceBuffer, TraceCtx, TraceEvent};
use dice_workloads::{MixDataModel, RecordSource, TraceGen, TraceRecord, TraceSource};

use crate::config::{SimConfig, WorkloadSet};
use crate::core_model::CoreModel;
use crate::report::{IntegrityReport, PhaseCycles, RunDiag, RunReport};
use crate::timeline::IntervalSample;
use crate::wheel::EventWheel;
use crate::Cycle;

/// Lines per 2 KB main-memory row.
const MEM_LINES_PER_ROW: u64 = 32;
/// Sample the resident-line count every this many demand records.
const CAPACITY_SAMPLE_EVERY: u64 = 2048;
/// When a tag-flip injector is armed, corrupt a tag every this many demand
/// records (frequent enough that short test windows see several faults).
const FAULT_INJECT_EVERY: u64 = 4096;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    /// A core is ready to dispatch its next trace record.
    Dispatch { core: usize },
    /// Install a memory fetch into the L4.
    Fill { line: u64, probed: Option<SetIndex> },
    /// A dirty L3 victim arrives at the L4.
    L4Writeback { line: u64 },
    /// An L3-side prefetch request (Table 7 policies).
    Prefetch { line: u64 },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Event {
    time: Cycle,
    seq: u64,
    kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The event queue behind the simulation loop. The wheel is the engine;
/// the heap is the original implementation, kept as the reference for the
/// differential determinism tests (and never used in production runs).
enum EventQueue {
    Wheel(EventWheel<EventKind>),
    Reference {
        heap: BinaryHeap<Reverse<Event>>,
        seq: u64,
    },
}

/// Per-run event-engine statistics (also accumulated process-wide; see
/// [`engine_counters`]). Not part of [`RunReport`]: the reference engine
/// chains nothing, so putting these in the report would break the
/// byte-identity contract the engines share.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineCounters {
    /// Events that round-tripped the queue (`sim.events_scheduled`).
    pub events_scheduled: u64,
    /// Dispatches run inline by the chaining fast path
    /// (`sim.events_chained`).
    pub events_chained: u64,
    /// Timing-wheel slot cascades (`sim.wheel_cascades`).
    pub wheel_cascades: u64,
}

static EVENTS_SCHEDULED: AtomicU64 = AtomicU64::new(0);
static EVENTS_CHAINED: AtomicU64 = AtomicU64::new(0);
static WHEEL_CASCADES: AtomicU64 = AtomicU64::new(0);

/// Process-wide event-engine totals across every simulation run, the
/// source for the `sim.events_scheduled` / `sim.events_chained` /
/// `sim.wheel_cascades` registry metrics (same lifetime convention as
/// `dice_runner::engine_runs`).
#[must_use]
pub fn engine_counters() -> EngineCounters {
    EngineCounters {
        events_scheduled: EVENTS_SCHEDULED.load(Ordering::Relaxed),
        events_chained: EVENTS_CHAINED.load(Ordering::Relaxed),
        wheel_cascades: WHEEL_CASCADES.load(Ordering::Relaxed),
    }
}

struct CoreState {
    gen: Box<dyn RecordSource>,
    model: CoreModel,
    records_done: u64,
    target: u64,
}

/// One simulated machine.
///
/// Deterministic: a given `(SimConfig, WorkloadSet)` always produces the
/// same [`RunReport`].
pub struct System {
    cfg: SimConfig,
    hierarchy: SramHierarchy,
    l4: DramCacheController,
    l4dram: DramDevice,
    mem: DramDevice,
    cores: Vec<CoreState>,
    data: MixDataModel,
    queue: EventQueue,
    /// Dispatch chaining enabled (wheel engine only; the reference engine
    /// round-trips every event so its pop order is the ground truth).
    chain: bool,
    ev_scheduled: u64,
    ev_chained: u64,
    /// Reusable buffer for draining L3 writebacks without allocating.
    wb_scratch: Vec<u64>,
    workload_name: String,
    valid_sum: f64,
    occupied_sum: f64,
    valid_samples: u64,
    records_since_sample: u64,
    demand_records: u64,
    integrity: IntegrityReport,
    sampling: bool,
    latency: LatencyPanel,
    trace: TraceBuffer,
    timeline: Vec<IntervalSample>,
    /// Whether decision diagnostics are reported (ObsConfig::trace_level
    /// above Off). Counting always happens; this gates attribution that
    /// would otherwise shift the report's byte-identical Off output.
    diag_on: bool,
    /// Per-phase cycle attribution over the measured window.
    phases: PhaseCycles,
    /// Span-tracing context and the parent span this run nests under.
    span_ctx: Option<(TraceCtx, Option<SpanId>)>,
    // Interval-sampling state: the next window boundary (lazily anchored to
    // the first measured event) and the counter snapshots at the last one.
    iv_next: Option<Cycle>,
    iv_l4: L4Stats,
    iv_l4d: DramStats,
    iv_mem: DramStats,
}

impl System {
    /// Builds a cold system running `workload` under `cfg`.
    ///
    /// With a recorded-trace binding attached to the workload, each core
    /// streams its records from the bound `.dtf` file (core `i` maps to
    /// file stream `i % file_cores`) — bounded-memory frame streaming, or
    /// materialized [`dice_workloads::ReplaySource`]s when the binding is
    /// in preload mode. Either way the record sequences are identical, so
    /// the two modes produce byte-identical reports. Values still come
    /// from the spec-driven data model: DTF value payloads are reserved
    /// for future value-exact replay.
    ///
    /// # Panics
    ///
    /// Panics if `workload.specs` is neither 1 nor `cfg.cores` entries,
    /// or (with the typed error's message) when a bound trace cannot be
    /// opened — the binding validated the file, so this means it changed
    /// or vanished since; the runner's per-cell `catch_unwind` contains
    /// the blast radius to one failed cell.
    #[must_use]
    pub fn new(cfg: SimConfig, workload: &WorkloadSet) -> Self {
        let specs: Vec<_> = if workload.specs.len() == 1 {
            vec![workload.specs[0].clone(); cfg.cores]
        } else {
            assert_eq!(
                workload.specs.len(),
                cfg.cores,
                "one spec per core (or one for all)"
            );
            workload.specs.clone()
        };
        let cores: Vec<Box<dyn RecordSource>> = match &workload.trace {
            Some(binding) => {
                let src = dice_ingest::DtfTraceSource::new(binding.clone());
                (0..cfg.cores)
                    .map(|i| match TraceSource::open_core(&src, i as u32) {
                        Ok(s) => s as Box<dyn RecordSource>,
                        Err(e) => panic!(
                            "workload {:?}: opening trace stream for core {i}: {e}",
                            workload.name
                        ),
                    })
                    .collect()
            }
            None => specs
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    Box::new(TraceGen::with_scale(s, i as u32, workload.seed, cfg.scale))
                        as Box<dyn RecordSource>
                })
                .collect(),
        };
        let data = MixDataModel::new(
            specs.iter().map(|s| s.values).collect(),
            workload.seed ^ 0xda7a,
        );
        Self::with_sources(cfg, &workload.name, cores, data)
    }

    /// Builds a system from explicit per-core record sources and a size
    /// oracle — the entry point for replaying recorded traces
    /// ([`dice_workloads::ReplaySource`]) instead of synthesizing streams.
    ///
    /// # Panics
    ///
    /// Panics if `sources.len() != cfg.cores`.
    #[must_use]
    pub fn with_sources(
        cfg: SimConfig,
        name: &str,
        sources: Vec<Box<dyn RecordSource>>,
        data: MixDataModel,
    ) -> Self {
        assert_eq!(sources.len(), cfg.cores, "one record source per core");
        let hcfg = HierarchyConfig {
            cores: cfg.cores,
            l3_bytes: cfg.l3_bytes,
            l3_ways: cfg.l3_ways,
            ..HierarchyConfig::paper_8core()
        };
        let cores = sources
            .into_iter()
            .map(|gen| CoreState {
                gen,
                model: CoreModel::new(cfg.mlp, cfg.base_cpi),
                records_done: 0,
                target: 0,
            })
            .collect();

        Self {
            hierarchy: SramHierarchy::new(&hcfg),
            l4: DramCacheController::new(cfg.l4),
            l4dram: DramDevice::new(cfg.l4_dram.clone()),
            mem: DramDevice::new(cfg.mem_dram.clone()),
            cores,
            data,
            queue: EventQueue::Wheel(EventWheel::new()),
            chain: true,
            ev_scheduled: 0,
            ev_chained: 0,
            wb_scratch: Vec::new(),
            workload_name: name.to_owned(),
            valid_sum: 0.0,
            occupied_sum: 0.0,
            valid_samples: 0,
            records_since_sample: 0,
            demand_records: 0,
            integrity: IntegrityReport::default(),
            sampling: false,
            latency: LatencyPanel::new(),
            trace: TraceBuffer::new(cfg.obs.trace_capacity),
            timeline: Vec::new(),
            diag_on: cfg.obs.trace_level.diagnostics_on(),
            phases: PhaseCycles::default(),
            span_ctx: None,
            iv_next: None,
            iv_l4: L4Stats::default(),
            iv_l4d: DramStats::default(),
            iv_mem: DramStats::default(),
            cfg,
        }
    }

    /// Attaches a span-tracing context: the run's warmup and measured
    /// phases are recorded in `ctx` as children of `parent`, so a sweep
    /// orchestrator can link every cell's simulation phases into one
    /// causally-connected tree.
    pub fn set_trace(&mut self, ctx: TraceCtx, parent: Option<SpanId>) {
        self.span_ctx = Some((ctx, parent));
    }

    fn push(&mut self, time: Cycle, kind: EventKind) {
        self.ev_scheduled += 1;
        match &mut self.queue {
            EventQueue::Wheel(w) => w.push(time, kind),
            EventQueue::Reference { heap, seq } => {
                *seq += 1;
                heap.push(Reverse(Event {
                    time,
                    seq: *seq,
                    kind,
                }));
            }
        }
    }

    fn pop_event(&mut self) -> Option<(Cycle, EventKind)> {
        match &mut self.queue {
            EventQueue::Wheel(w) => w.pop().map(|e| (e.time, e.payload)),
            EventQueue::Reference { heap, .. } => heap.pop().map(|Reverse(e)| (e.time, e.kind)),
        }
    }

    /// A lower bound on the earliest queued due time (wheel engine only;
    /// see [`EventWheel::earliest_bound`] for the soundness argument).
    fn earliest_bound(&self) -> Option<Cycle> {
        match &self.queue {
            EventQueue::Wheel(w) => w.earliest_bound(),
            EventQueue::Reference { heap, .. } => heap.peek().map(|Reverse(e)| e.time),
        }
    }

    /// Switches this system onto the original heap-based engine. Test-only
    /// (the differential determinism suite); must be called before `run`.
    #[doc(hidden)]
    pub fn use_reference_engine(&mut self) {
        assert_eq!(
            self.queue_len(),
            0,
            "engine switch only valid before the first event"
        );
        self.queue = EventQueue::Reference {
            heap: BinaryHeap::new(),
            seq: 0,
        };
        self.chain = false;
    }

    fn queue_len(&self) -> usize {
        match &self.queue {
            EventQueue::Wheel(w) => w.len(),
            EventQueue::Reference { heap, .. } => heap.len(),
        }
    }

    /// Records one completed transaction's latency (and, when tracing is
    /// on, its trace event). Only the measured window is observed, so the
    /// report's histograms match its counters.
    fn observe(&mut self, class: RequestClass, start: Cycle, end: Cycle, line: u64) {
        if !self.sampling {
            return;
        }
        self.latency.record(class, end - start);
        self.trace.push(TraceEvent {
            start,
            end,
            class,
            addr: line * 64,
        });
    }

    /// Closes interval windows up to `now`. The first measured event
    /// anchors the window grid; event times pop in nondecreasing order, so
    /// each boundary is closed exactly once.
    fn interval_tick(&mut self, now: Cycle) {
        let iv = self.cfg.obs.interval_cycles;
        if iv == 0 {
            return;
        }
        let Some(mut next) = self.iv_next else {
            self.iv_next = Some(now + iv);
            self.iv_l4 = *self.l4.stats();
            self.iv_l4d = *self.l4dram.stats();
            self.iv_mem = *self.mem.stats();
            return;
        };
        while now >= next {
            self.close_interval(next, iv);
            next += iv;
        }
        self.iv_next = Some(next);
    }

    fn close_interval(&mut self, end_cycle: Cycle, cycles: Cycle) {
        let l4 = self.l4.stats().delta_since(&self.iv_l4);
        let l4_dram = self.l4dram.stats().delta_since(&self.iv_l4d);
        let mem_dram = self.mem.stats().delta_since(&self.iv_mem);
        self.iv_l4 = *self.l4.stats();
        self.iv_l4d = *self.l4dram.stats();
        self.iv_mem = *self.mem.stats();
        self.timeline.push(IntervalSample {
            end_cycle,
            cycles,
            l4,
            l4_dram,
            mem_dram,
            valid_lines: self.l4.valid_lines(),
            occupied_sets: self.l4.occupied_sets(),
        });
    }

    fn l4_loc(&self, set: SetIndex) -> Location {
        Location::interleave(self.l4dram.config(), self.l4.row_of(set))
    }

    fn mem_loc(&self, line: u64) -> Location {
        Location::interleave(self.mem.config(), line / MEM_LINES_PER_ROW)
    }

    /// Executes dependent probes back to back; returns the final data time.
    fn run_probes(&mut self, start: Cycle, probes: &[Probe]) -> Cycle {
        let mut t = start;
        for p in probes {
            let kind = if p.write {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let loc = self.l4_loc(p.set);
            t = self.l4dram.access(t, kind, loc, p.bytes).done;
        }
        t
    }

    /// The L4 demand-read path; returns when the requester sees data.
    fn l4_demand(&mut self, t: Cycle, line: u64) -> Cycle {
        let out = self.l4.read(line);
        let data_time = self.run_probes(t, &out.probes);
        let probed = out.probes.last().map(|p| p.set);

        if out.hit {
            // When MAP-I predicted a miss, a speculative memory read was
            // enqueued alongside the cache probe. The tag check resolves in
            // ~100-200 cycles, well inside DDR's queueing delay, so the
            // controller dequeues the speculative request before it issues
            // — a hit costs no memory bandwidth (matching MAP-I's design:
            // mispredictions waste latency headroom, not DDR throughput).
            if self.cfg.install_pair_in_l3 {
                for f in out.free_lines {
                    self.hierarchy.l3_fill(f, false);
                }
                self.drain_l3_writebacks(data_time);
            }
            let class = if out.probes.len() > 1 {
                RequestClass::SecondProbe
            } else {
                RequestClass::ReadHit
            };
            if self.sampling && self.diag_on {
                self.phases.data_transfer_cycles += data_time - t;
            }
            self.observe(class, t, data_time, line);
            data_time
        } else {
            // On a predicted miss, memory was accessed in parallel with the
            // cache probe; otherwise it serializes behind tag resolution.
            if self.sampling && self.diag_on {
                self.phases.tag_probe_cycles += data_time - t;
            }
            let mem_start = if out.predicted_hit { data_time } else { t };
            let done = self
                .mem
                .access(mem_start, AccessKind::Read, self.mem_loc(line), 64)
                .done;
            self.push(done, EventKind::Fill { line, probed });
            self.observe(RequestClass::ReadMiss, t, done, line);
            done
        }
    }

    fn drain_l3_writebacks(&mut self, t: Cycle) {
        // The scratch buffer is taken/returned around the push loop so the
        // borrow checker allows `self.push`; its capacity persists across
        // records, keeping the steady-state loop allocation-free.
        let mut scratch = std::mem::take(&mut self.wb_scratch);
        self.hierarchy.drain_writebacks_into(&mut scratch);
        for &wb in &scratch {
            self.push(t, EventKind::L4Writeback { line: wb });
        }
        scratch.clear();
        self.wb_scratch = scratch;
    }

    fn mem_writes(&mut self, t: Cycle, lines: &[u64]) {
        for &l in lines {
            let loc = self.mem_loc(l);
            self.mem.access(t, AccessKind::Write, loc, 64);
        }
    }

    /// The seed of an armed size-lie injector, if any.
    fn size_lie_seed(&self) -> Option<u64> {
        match self.cfg.inject {
            Some(FaultPlan {
                kind: FaultKind::SizeLie,
                seed,
            }) => Some(seed),
            _ => None,
        }
    }

    /// Periodic fault injection (when armed) and invariant auditing,
    /// clocked by demand records so both are deterministic.
    fn integrity_tick(&mut self) {
        if let Some(plan) = self.cfg.inject {
            if plan.kind == FaultKind::TagFlip
                && self.demand_records.is_multiple_of(FAULT_INJECT_EVERY)
            {
                // Evolve the seed so successive flips land on different
                // sets; corrupt both the L4 TAD array and the L3 tags.
                let seed = plan.seed.wrapping_add(self.demand_records);
                if self.l4.inject_tag_flip(seed).is_some() {
                    self.integrity.faults_injected += 1;
                }
                if self.hierarchy.l3_inject_tag_flip(seed ^ 0x5a5a).is_some() {
                    self.integrity.faults_injected += 1;
                }
            }
        }
        if self.cfg.audit_every > 0 && self.demand_records.is_multiple_of(self.cfg.audit_every) {
            self.audit_now();
        }
    }

    /// One auditor sweep: validate every L4 set against the honest size
    /// oracle and every SRAM level's tag store. Recovery is set-granular —
    /// a violating set's contents cannot be trusted (least of all its
    /// dirty bits), so it is dropped whole and refilled on demand.
    fn audit_now(&mut self) {
        self.integrity.audits += 1;
        let violations = self.l4.audit(&mut self.data);
        self.integrity.violations += violations.len() as u64;
        // Violations arrive grouped by set in ascending order, so a
        // linear dedup yields each damaged set exactly once.
        let mut sets: Vec<SetIndex> = violations.iter().map(|v| v.set).collect();
        sets.dedup();
        for s in sets {
            self.l4.invalidate_set(s);
            self.integrity.l4_sets_refilled += 1;
        }
        let l3_violations = self.hierarchy.audit();
        if !l3_violations.is_empty() {
            self.integrity.violations += l3_violations.len() as u64;
            self.integrity.l3_lines_dropped += self.hierarchy.l3_scrub() as u64;
        }
    }

    fn handle_record(&mut self, rec: TraceRecord, t: Cycle) -> Cycle {
        self.demand_records += 1;
        if self.cfg.audit_every > 0 || self.cfg.inject.is_some() {
            self.integrity_tick();
        }
        if self.sampling {
            self.records_since_sample += 1;
            if self.records_since_sample >= CAPACITY_SAMPLE_EVERY {
                self.records_since_sample = 0;
                self.valid_sum += self.l4.valid_lines() as f64;
                self.occupied_sum += self.l4.occupied_sets().max(1) as f64;
                self.valid_samples += 1;
            }
        }

        if self.hierarchy.l3_access(rec.line, rec.write) {
            return t + self.cfg.l3_hit_latency;
        }
        let completion = self.l4_demand(t, rec.line);
        self.hierarchy.l3_fill(rec.line, rec.write);
        self.drain_l3_writebacks(completion);
        // Prefetch policies issue their extra fetches as independent
        // requests (paying full bandwidth — the contrast of Table 7).
        // Like a real next-line prefetcher, they have no notion of the
        // workload's footprint; useless prefetches simply pollute.
        if let Some(e) = self.cfg.l3_fetch.extra_fetch(rec.line) {
            self.push(t, EventKind::Prefetch { line: e });
        }
        completion + self.cfg.l3_hit_latency
    }

    /// Handles one event; a `Dispatch` that has a follow-up dispatch
    /// returns it (due time, kind) instead of pushing, so the caller can
    /// chain it inline when nothing else is due earlier.
    fn handle_event(&mut self, time: Cycle, kind: EventKind) -> Option<(Cycle, EventKind)> {
        match kind {
            EventKind::Dispatch { core } => {
                if self.cores[core].records_done >= self.cores[core].target {
                    return None;
                }
                let rec = self.cores[core].gen.next_record();
                let t = self.cores[core].model.advance(rec.gap);
                let completion = self.handle_record(rec, t);
                let c = &mut self.cores[core];
                c.model.complete(completion);
                c.records_done += 1;
                if c.records_done < c.target {
                    let next = c.model.next_dispatch();
                    return Some((next, EventKind::Dispatch { core }));
                }
            }
            EventKind::Fill { line, probed } => {
                // With a size-lie injector armed, the controller consults a
                // corrupted oracle on installs; the honest-oracle audit is
                // what catches the resulting over-packed sets.
                let out = if let Some(seed) = self.size_lie_seed() {
                    let mut liar = LyingSizes::new(&mut self.data, seed);
                    if liar.lies_about(line) {
                        self.integrity.faults_injected += 1;
                    }
                    self.l4.fill(line, false, probed, &mut liar)
                } else {
                    self.l4.fill(line, false, probed, &mut self.data)
                };
                let end = self.run_probes(time, &out.probes);
                if self.sampling && self.diag_on {
                    self.phases.fill_cycles += end - time;
                }
                self.mem_writes(end, &out.memory_writebacks);
                self.observe(RequestClass::MemFill, time, end, line);
            }
            EventKind::L4Writeback { line } => {
                let out = if let Some(seed) = self.size_lie_seed() {
                    let mut liar = LyingSizes::new(&mut self.data, seed);
                    if liar.lies_about(line) {
                        self.integrity.faults_injected += 1;
                    }
                    self.l4.writeback(line, &mut liar)
                } else {
                    self.l4.writeback(line, &mut self.data)
                };
                let end = self.run_probes(time, &out.probes);
                if self.sampling && self.diag_on {
                    self.phases.writeback_cycles += end - time;
                }
                self.mem_writes(end, &out.memory_writebacks);
                self.observe(RequestClass::Writeback, time, end, line);
            }
            EventKind::Prefetch { line } => {
                // Prefetches use the demand path for timing/bandwidth but
                // install into the shared L3 only. They are throttled:
                // a prefetch the MAP-I expects to miss the L4 would spend
                // DDR bandwidth on speculation and is dropped instead.
                if self.hierarchy.l3_contains(line) || !self.l4.predicts_hit(line) {
                    return None;
                }
                let done = self.l4_demand(time, line);
                self.hierarchy.l3_fill(line, false);
                self.drain_l3_writebacks(done);
            }
        }
        None
    }

    /// Executes an event and chains same-core follow-up dispatches inline
    /// for as long as each is due strictly before every queued event. The
    /// strict inequality is what keeps execution order identical to the
    /// reference engine: at a tie, the queued event carries the lower
    /// sequence number and must run first, so the dispatch goes through
    /// the queue like any other event.
    fn process(&mut self, mut time: Cycle, mut kind: EventKind) {
        loop {
            if self.sampling {
                self.interval_tick(time);
            }
            let Some((t, k)) = self.handle_event(time, kind) else {
                return;
            };
            if self.chain && self.earliest_bound().is_none_or(|b| t < b) {
                self.ev_chained += 1;
                time = t;
                kind = k;
            } else {
                self.push(t, k);
                return;
            }
        }
    }

    fn run_phase(&mut self, records_per_core: u64) {
        // The seed dispatches are not sorted by time; rewind the (empty)
        // wheel to their minimum so every push lands at or after its clock.
        if let EventQueue::Wheel(w) = &mut self.queue {
            if let Some(start) = self.cores.iter().map(|c| c.model.next_dispatch()).min() {
                w.rewind(start);
            }
        }
        for core in 0..self.cores.len() {
            self.cores[core].target += records_per_core;
            let t = self.cores[core].model.next_dispatch();
            self.push(t, EventKind::Dispatch { core });
        }
        while let Some((time, kind)) = self.pop_event() {
            self.process(time, kind);
        }
    }

    /// Runs `records_per_core` more records per core on the current engine
    /// without entering the measured window. Test-only: the counting-
    /// allocator test uses this to exercise the steady-state loop from a
    /// warmed system.
    #[doc(hidden)]
    pub fn drive(&mut self, records_per_core: u64) {
        self.run_phase(records_per_core);
    }

    /// Runs warm-up then the measured window and reports the measurement.
    ///
    /// # Panics
    ///
    /// Panics when a [`FaultKind::CellPanic`] injector is armed — that is
    /// the injector's whole purpose (the runner's `catch_unwind` isolation
    /// is what's under test).
    pub fn run(self) -> RunReport {
        self.run_with_engine_stats().0
    }

    /// [`run`](Self::run), also returning this run's engine counters
    /// (which never appear in the report; see [`EngineCounters`]).
    #[doc(hidden)]
    pub fn run_with_engine_stats(mut self) -> (RunReport, EngineCounters) {
        let span_ctx = self.span_ctx.clone();
        {
            let mut warm = span_ctx
                .as_ref()
                .and_then(|(ctx, parent)| ctx.span("sim.warmup", *parent));
            self.run_phase(self.cfg.warmup_records);
            if let Some(g) = warm.as_mut() {
                let end = self
                    .cores
                    .iter()
                    .map(|c| c.model.finish_time())
                    .max()
                    .unwrap_or(0);
                g.set_cycles(0, end);
            }
        }

        // Mid-cell process faults fire at the measurement boundary —
        // halfway through the cell's work, the worst case for the
        // runner's isolation and watchdog machinery.
        match self.cfg.inject {
            Some(FaultPlan {
                kind: FaultKind::CellPanic,
                seed,
            }) => panic!("injected mid-cell panic (seed {seed:#x})"),
            Some(FaultPlan {
                kind: FaultKind::CellTimeout,
                ..
            }) => {
                // Hang far past any reasonable watchdog budget; the
                // runner reports the cell as timed out and moves on.
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
            _ => {}
        }

        // Snapshot at the measurement boundary.
        self.hierarchy.reset_stats();
        let l4_snap = *self.l4.stats();
        let l4d_snap = *self.l4dram.stats();
        let mem_snap = *self.mem.stats();
        let t0: Vec<Cycle> = self.cores.iter().map(|c| c.model.next_dispatch()).collect();
        for c in &mut self.cores {
            c.model.reset_instructions();
        }
        self.sampling = true;

        {
            let boundary = self
                .cores
                .iter()
                .map(|c| c.model.finish_time())
                .max()
                .unwrap_or(0);
            let mut meas = span_ctx
                .as_ref()
                .and_then(|(ctx, parent)| ctx.span("sim.measure", *parent));
            self.run_phase(self.cfg.measure_records);
            if let Some(g) = meas.as_mut() {
                let end = self
                    .cores
                    .iter()
                    .map(|c| c.model.finish_time())
                    .max()
                    .unwrap_or(boundary);
                g.set_cycles(boundary, end);
            }
        }

        // Close the final (partial) interval window so late-run activity
        // still appears in the time series.
        if let Some(next) = self.iv_next {
            let iv = self.cfg.obs.interval_cycles;
            let window_start = next - iv;
            let end = self
                .cores
                .iter()
                .map(|c| c.model.finish_time())
                .max()
                .unwrap_or(next);
            if end > window_start {
                self.close_interval(end, end - window_start);
            }
        }

        let core_cycles: Vec<Cycle> = self
            .cores
            .iter()
            .zip(&t0)
            .map(|(c, &s)| c.model.finish_time().saturating_sub(s))
            .collect();
        let cycles = *core_cycles.iter().max().unwrap_or(&0);
        let l4_dram = self.l4dram.stats().delta_since(&l4d_snap);
        let mem_dram = self.mem.stats().delta_since(&mem_snap);
        let (avg_valid_lines, avg_occupied_sets) = if self.valid_samples == 0 {
            (
                self.l4.valid_lines() as f64,
                self.l4.occupied_sets().max(1) as f64,
            )
        } else {
            (
                self.valid_sum / self.valid_samples as f64,
                self.occupied_sum / self.valid_samples as f64,
            )
        };

        let counters = EngineCounters {
            events_scheduled: self.ev_scheduled,
            events_chained: self.ev_chained,
            wheel_cascades: match &self.queue {
                EventQueue::Wheel(w) => w.cascades(),
                EventQueue::Reference { .. } => 0,
            },
        };
        EVENTS_SCHEDULED.fetch_add(counters.events_scheduled, Ordering::Relaxed);
        EVENTS_CHAINED.fetch_add(counters.events_chained, Ordering::Relaxed);
        WHEEL_CASCADES.fetch_add(counters.wheel_cascades, Ordering::Relaxed);

        let report = RunReport {
            workload: self.workload_name.clone(),
            cycles,
            core_instructions: self.cores.iter().map(|c| c.model.instructions()).collect(),
            core_cycles,
            l3: *self.hierarchy.l3_stats(),
            l4: self.l4.stats().delta_since(&l4_snap),
            l4_dram,
            mem_dram,
            cip_accuracy: self.l4.cip_accuracy(),
            cip_predictions: self.l4.cip_predictions(),
            mapi_accuracy: self.l4.mapi_accuracy(),
            avg_valid_lines,
            avg_occupied_sets,
            baseline_lines: self.l4.num_sets(),
            energy: RunReport::energy_of(&l4_dram, &mem_dram, cycles),
            integrity: self.integrity,
            latency: self.latency,
            timeline: self.timeline,
            trace: self.trace,
            diag: if self.diag_on {
                Some(RunDiag {
                    decisions: *self.l4.diagnostics(),
                    phases: self.phases,
                })
            } else {
                None
            },
        };
        (report, counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dice_core::Organization;
    use dice_workloads::{spec_table, WorkloadSpec};

    fn spec(name: &str) -> WorkloadSpec {
        spec_table().into_iter().find(|w| w.name == name).unwrap()
    }

    fn quick(org: Organization, wl: &str) -> RunReport {
        let cfg = SimConfig::scaled(org, 256).with_records(4_000, 8_000);
        System::new(cfg, &WorkloadSet::rate(spec(wl), 7)).run()
    }

    #[test]
    fn simulation_is_deterministic() {
        let a = quick(Organization::Dice { threshold: 36 }, "gcc");
        let b = quick(Organization::Dice { threshold: 36 }, "gcc");
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.l4.reads, b.l4.reads);
        assert_eq!(a.mem_dram.reads, b.mem_dram.reads);
    }

    #[test]
    fn caches_actually_hit() {
        let r = quick(Organization::UncompressedAlloy, "gcc");
        assert!(r.l3.hit_rate() > 0.05, "L3 hit rate {}", r.l3.hit_rate());
        assert!(r.l4.hit_rate() > 0.2, "L4 hit rate {}", r.l4.hit_rate());
        assert!(r.cycles > 0);
        assert!(r.core_instructions.iter().all(|&i| i > 0));
    }

    #[test]
    fn compression_increases_effective_capacity() {
        // Longer window on a smaller cache so the L4 actually fills.
        let run = |org| {
            let cfg = SimConfig::scaled(org, 1024).with_records(6_000, 12_000);
            System::new(cfg, &WorkloadSet::rate(spec("cc_twi"), 7)).run()
        };
        let base = run(Organization::UncompressedAlloy);
        let tsi = run(Organization::CompressedTsi);
        assert!(tsi.capacity_ratio() > base.capacity_ratio());
        assert!(
            tsi.capacity_ratio() > 1.1,
            "tsi ratio {}",
            tsi.capacity_ratio()
        );
    }

    #[test]
    fn dice_beats_baseline_on_compressible_spatial_workload() {
        let base = quick(Organization::UncompressedAlloy, "cc_twi");
        let dice = quick(Organization::Dice { threshold: 36 }, "cc_twi");
        let s = dice.weighted_speedup(&base);
        assert!(s > 1.0, "DICE speedup on cc_twi = {s}");
    }

    #[test]
    fn dice_does_not_tank_incompressible_workload() {
        let base = quick(Organization::UncompressedAlloy, "lbm");
        let dice = quick(Organization::Dice { threshold: 36 }, "lbm");
        let s = dice.weighted_speedup(&base);
        assert!(s > 0.93, "DICE must not degrade lbm: {s}");
    }

    #[test]
    fn free_lines_flow_on_dice() {
        let dice = quick(Organization::Dice { threshold: 36 }, "cc_twi");
        assert!(
            dice.l4.free_lines > 0,
            "compressed pairs should deliver free lines"
        );
    }

    #[test]
    fn energy_is_positive_and_memory_dominated_for_misses() {
        let r = quick(Organization::UncompressedAlloy, "mcf");
        assert!(r.energy.total_joules() > 0.0);
        assert!(r.energy.l4_joules > 0.0);
        assert!(r.energy.mem_joules > 0.0);
    }

    #[test]
    fn observability_captures_latency_timeline_and_trace() {
        let mut cfg =
            SimConfig::scaled(Organization::Dice { threshold: 36 }, 256).with_records(4_000, 8_000);
        cfg.obs.interval_cycles = 50_000;
        cfg.obs.trace_capacity = 1024;
        let r = System::new(cfg, &WorkloadSet::rate(spec("gcc"), 7)).run();

        // Latency panel totals must reconcile with the counters: every
        // measured L4 read is either a hit (one or two probes) or a miss.
        let hits = r.latency.class(dice_obs::RequestClass::ReadHit).count()
            + r.latency.class(dice_obs::RequestClass::SecondProbe).count();
        let misses = r.latency.class(dice_obs::RequestClass::ReadMiss).count();
        assert!(hits > 0, "no hit latencies recorded");
        assert!(misses > 0, "no miss latencies recorded");
        // Prefetching is off in this config, so the panel matches exactly.
        assert_eq!(hits, r.l4.read_hits);
        assert_eq!(hits + misses, r.l4.reads);
        // A miss includes a DDR round trip; hits must be faster on average.
        let mean_hit = r.latency.class(dice_obs::RequestClass::ReadHit).mean();
        let mean_miss = r.latency.class(dice_obs::RequestClass::ReadMiss).mean();
        assert!(
            mean_hit < mean_miss,
            "hit mean {mean_hit} !< miss mean {mean_miss}"
        );

        assert!(
            r.timeline.len() >= 2,
            "only {} interval samples",
            r.timeline.len()
        );
        let window_reads: u64 = r.timeline.iter().map(|s| s.l4.reads).sum();
        assert_eq!(
            window_reads, r.l4.reads,
            "timeline windows must tile the measured reads"
        );
        assert!(!r.trace.is_empty(), "trace enabled but empty");
    }

    /// Fixture for driving [`System::interval_tick`] directly: a tiny
    /// system with the given interval length and nothing simulated yet.
    fn tick_fixture(iv: Cycle) -> System {
        let mut cfg = SimConfig::scaled(Organization::UncompressedAlloy, 256).with_records(10, 10);
        cfg.obs.interval_cycles = iv;
        System::new(cfg, &WorkloadSet::rate(spec("gcc"), 7))
    }

    #[test]
    fn interval_tick_anchors_then_closes_exactly_on_boundary() {
        let mut sys = tick_fixture(100);
        // The first measured event anchors the window grid and must not
        // close anything.
        sys.interval_tick(1_000);
        assert_eq!(sys.iv_next, Some(1_100));
        assert!(sys.timeline.is_empty(), "anchoring must not close a window");
        // An event landing exactly on the boundary closes that window
        // (boundaries are inclusive: `now >= next`).
        sys.interval_tick(1_100);
        assert_eq!(sys.timeline.len(), 1);
        assert_eq!(sys.timeline[0].end_cycle, 1_100);
        assert_eq!(sys.timeline[0].cycles, 100);
        assert_eq!(sys.iv_next, Some(1_200));
    }

    #[test]
    fn interval_tick_before_boundary_closes_nothing() {
        let mut sys = tick_fixture(100);
        sys.interval_tick(1_000);
        sys.interval_tick(1_050);
        sys.interval_tick(1_099); // one cycle short of the boundary
        assert!(sys.timeline.is_empty());
        assert_eq!(sys.iv_next, Some(1_100), "boundary must not move early");
    }

    #[test]
    fn interval_tick_far_past_boundary_closes_every_skipped_window() {
        let mut sys = tick_fixture(100);
        sys.interval_tick(1_000);
        // An event 3.5 windows out closes the three elapsed windows in
        // order; the in-progress window (ending 1_400) stays open.
        sys.interval_tick(1_350);
        let ends: Vec<Cycle> = sys.timeline.iter().map(|s| s.end_cycle).collect();
        assert_eq!(ends, vec![1_100, 1_200, 1_300]);
        assert!(sys.timeline.iter().all(|s| s.cycles == 100));
        assert_eq!(sys.iv_next, Some(1_400));
    }

    #[test]
    fn interval_tick_disabled_is_inert() {
        let mut sys = tick_fixture(0);
        sys.interval_tick(1_000);
        sys.interval_tick(10_000);
        assert_eq!(sys.iv_next, None);
        assert!(sys.timeline.is_empty());
    }

    #[test]
    fn observability_disabled_is_silent() {
        let mut cfg =
            SimConfig::scaled(Organization::UncompressedAlloy, 256).with_records(2_000, 4_000);
        cfg.obs.interval_cycles = 0;
        cfg.obs.trace_capacity = 0;
        let r = System::new(cfg, &WorkloadSet::rate(spec("gcc"), 7)).run();
        assert!(r.timeline.is_empty());
        assert!(r.trace.is_empty());
        // Latency histograms still fill — they are part of the report
        // proper, not the optional trace.
        assert!(r.latency.total_count() > 0);
    }

    /// The acceptance property behind `--audit`: the auditor is read-only
    /// on a healthy system, so an audited run is cycle-identical (in fact
    /// report-identical) to an unaudited one.
    #[test]
    fn audited_clean_run_is_identical_to_unaudited() {
        let run = |audit_every| {
            let cfg = SimConfig::scaled(Organization::Dice { threshold: 36 }, 256)
                .with_records(4_000, 8_000)
                .with_audit(audit_every);
            System::new(cfg, &WorkloadSet::rate(spec("gcc"), 7)).run()
        };
        let plain = run(0);
        let audited = run(512);
        assert!(audited.integrity.audits > 0);
        assert_eq!(
            audited.integrity.violations, 0,
            "healthy run must audit clean"
        );
        assert_eq!(audited.integrity.l4_sets_refilled, 0);
        assert_eq!(audited.cycles, plain.cycles);
        assert_eq!(audited.l4.reads, plain.l4.reads);
        assert_eq!(audited.mem_dram.reads, plain.mem_dram.reads);
    }

    #[test]
    fn injected_tag_flips_are_detected_and_recovered() {
        let cfg = SimConfig::scaled(Organization::Dice { threshold: 36 }, 256)
            .with_records(4_000, 8_000)
            .with_audit(512)
            .with_inject(dice_core::FaultPlan::seeded(dice_core::FaultKind::TagFlip));
        let r = System::new(cfg, &WorkloadSet::rate(spec("gcc"), 7)).run();
        assert!(r.integrity.faults_injected > 0, "no faults landed");
        assert!(r.integrity.violations > 0, "auditor missed the flips");
        assert!(
            r.integrity.l4_sets_refilled > 0 || r.integrity.l3_lines_dropped > 0,
            "no recovery happened"
        );
        // Degradation is graceful: the run still completes and measures.
        assert!(r.cycles > 0);
        assert!(r.core_instructions.iter().all(|&i| i > 0));
    }

    #[test]
    fn injected_size_lies_are_caught_by_honest_audit() {
        let cfg = SimConfig::scaled(Organization::Dice { threshold: 36 }, 1024)
            .with_records(6_000, 12_000)
            .with_audit(512)
            .with_inject(dice_core::FaultPlan::seeded(dice_core::FaultKind::SizeLie));
        let r = System::new(cfg, &WorkloadSet::rate(spec("cc_twi"), 7)).run();
        assert!(r.integrity.faults_injected > 0, "oracle never lied");
        assert!(r.integrity.violations > 0, "over-packed sets not detected");
        assert!(r.integrity.l4_sets_refilled > 0, "no sets recovered");
        assert!(r.cycles > 0);
    }

    #[test]
    #[should_panic(expected = "injected mid-cell panic")]
    fn cell_panic_injector_fires_at_measurement_boundary() {
        let cfg = SimConfig::scaled(Organization::UncompressedAlloy, 256)
            .with_records(200, 200)
            .with_inject(dice_core::FaultPlan::seeded(
                dice_core::FaultKind::CellPanic,
            ));
        let _ = System::new(cfg, &WorkloadSet::rate(spec("gcc"), 7)).run();
    }

    #[test]
    fn decisions_trace_level_reports_diag_consistent_with_counters() {
        let mut cfg =
            SimConfig::scaled(Organization::Dice { threshold: 36 }, 256).with_records(4_000, 8_000);
        cfg.obs.trace_level = dice_obs::TraceLevel::Decisions;
        let r = System::new(cfg, &WorkloadSet::rate(spec("gcc"), 7)).run();
        let d = r.diag.expect("Decisions level must report diagnostics");
        // Whole-run confusion matrix reconciles with the whole-run CIP
        // counters the report already carries.
        assert_eq!(d.decisions.read_predictions(), r.cip_predictions);
        assert_eq!(d.decisions.read_accuracy(), r.cip_accuracy);
        assert!(d.decisions.consulted_fills() > 0);
        assert!(d.decisions.bytes_moved > d.decisions.bytes_needed);
        // The measured window saw hits, misses and fills.
        assert!(d.phases.data_transfer_cycles > 0);
        assert!(d.phases.tag_probe_cycles > 0);
        assert!(d.phases.fill_cycles > 0);
        assert!(r.to_json().render().contains("\"diag\""));
    }

    #[test]
    fn trace_level_does_not_perturb_simulation() {
        // Diagnostics are pure observation: an Off run and a Decisions run
        // of the same cell must agree on every simulated quantity, and the
        // Off report's JSON must not mention diag at all.
        let run = |level| {
            let mut cfg = SimConfig::scaled(Organization::Dice { threshold: 36 }, 256)
                .with_records(4_000, 8_000);
            cfg.obs.trace_level = level;
            System::new(cfg, &WorkloadSet::rate(spec("gcc"), 7)).run()
        };
        let off = run(dice_obs::TraceLevel::Off);
        let on = run(dice_obs::TraceLevel::Decisions);
        assert_eq!(off.cycles, on.cycles);
        assert_eq!(off.l4, on.l4);
        assert_eq!(off.mem_dram.reads, on.mem_dram.reads);
        assert_eq!(off.cip_predictions, on.cip_predictions);
        assert!(off.diag.is_none());
        assert!(!off.to_json().render().contains("\"diag\""));
    }

    #[test]
    fn sim_phases_span_under_the_given_parent() {
        let ctx = TraceCtx::enabled();
        let root = ctx.span("cell", None).expect("enabled ctx yields spans");
        let root_id = root.id();
        let cfg =
            SimConfig::scaled(Organization::UncompressedAlloy, 256).with_records(1_000, 2_000);
        let mut sys = System::new(cfg, &WorkloadSet::rate(spec("gcc"), 7));
        sys.set_trace(ctx.clone(), Some(root_id));
        let _ = sys.run();
        drop(root);
        let spans = ctx.spans();
        for name in ["sim.warmup", "sim.measure"] {
            let s = spans
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("missing {name} span"));
            assert_eq!(s.parent, Some(root_id));
            let (a, b) = s.cycles.expect("sim spans carry cycle bounds");
            assert!(b >= a);
        }
        let measure = spans.iter().find(|s| s.name == "sim.measure").unwrap();
        assert!(
            measure.cycles.unwrap().1 > measure.cycles.unwrap().0,
            "measured phase must advance simulated time"
        );
    }

    #[test]
    fn mix_workloads_run() {
        let cfg =
            SimConfig::scaled(Organization::Dice { threshold: 36 }, 256).with_records(2_000, 4_000);
        let specs = vec![
            spec("mcf"),
            spec("lbm"),
            spec("gcc"),
            spec("libq"),
            spec("astar"),
            spec("wrf"),
            spec("milc"),
            spec("xalanc"),
        ];
        let r = System::new(cfg, &WorkloadSet::mix("mixT", specs, 3)).run();
        assert!(r.cycles > 0);
        assert_eq!(r.core_instructions.len(), 8);
    }
}
