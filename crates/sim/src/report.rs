//! Measurement output of one simulation run.

use dice_cache::CacheStats;
use dice_core::{DecisionDiag, L4Stats};
use dice_dram::{DramStats, EnergyModel};
use dice_obs::{impl_snapshot, snapshot_from_json, snapshot_json, Json, LatencyPanel, TraceBuffer};

use crate::timeline::IntervalSample;
use crate::Cycle;

/// Energy accounting for the off-chip system (L4 + memory), the quantities
/// behind Figure 14.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Stacked-DRAM (L4) energy in joules over the measured window.
    pub l4_joules: f64,
    /// DDR main-memory energy in joules.
    pub mem_joules: f64,
    /// Measured window length in cycles.
    pub cycles: Cycle,
}

impl EnergyReport {
    /// Total off-chip energy.
    #[must_use]
    pub fn total_joules(&self) -> f64 {
        self.l4_joules + self.mem_joules
    }

    /// Average power in watts (3.2 GHz clock).
    #[must_use]
    pub fn power_watts(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.total_joules() / (self.cycles as f64 / 3.2e9)
        }
    }

    /// Energy-delay product in joule-seconds.
    #[must_use]
    pub fn edp(&self) -> f64 {
        self.total_joules() * self.cycles as f64 / 3.2e9
    }
}

/// Integrity-layer accounting for one run: auditor activity, detected
/// invariant violations, and the recovery work they triggered. All zeros
/// on a healthy run (or when `SimConfig::audit_every` is 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IntegrityReport {
    /// Number of auditor sweeps executed.
    pub audits: u64,
    /// Invariant violations detected across all sweeps.
    pub violations: u64,
    /// L4 sets invalidated (and later refilled on demand) to recover.
    pub l4_sets_refilled: u64,
    /// L3 lines dropped by scrubbing corrupted SRAM sets.
    pub l3_lines_dropped: u64,
    /// Faults deliberately injected by an armed `FaultPlan`.
    pub faults_injected: u64,
}

impl IntegrityReport {
    fn to_json(self) -> Json {
        Json::Obj(vec![
            ("audits".into(), Json::u64(self.audits)),
            ("violations".into(), Json::u64(self.violations)),
            ("l4_sets_refilled".into(), Json::u64(self.l4_sets_refilled)),
            ("l3_lines_dropped".into(), Json::u64(self.l3_lines_dropped)),
            ("faults_injected".into(), Json::u64(self.faults_injected)),
        ])
    }

    fn from_json(j: &Json) -> Option<Self> {
        Some(Self {
            audits: j.get("audits")?.as_u64()?,
            violations: j.get("violations")?.as_u64()?,
            l4_sets_refilled: j.get("l4_sets_refilled")?.as_u64()?,
            l3_lines_dropped: j.get("l3_lines_dropped")?.as_u64()?,
            faults_injected: j.get("faults_injected")?.as_u64()?,
        })
    }
}

/// Cycle attribution of the measured window by request phase: how long
/// completed L4 transactions spent probing tags on misses, delivering hit
/// data, installing fills and servicing writebacks. Phases overlap across
/// concurrent requests, so the sum can exceed the window's wall-clock
/// cycles — the split shows *where* DRAM-cache time goes, not a partition
/// of the clock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseCycles {
    /// Cycles from demand issue to the probe that resolved a miss.
    pub tag_probe_cycles: u64,
    /// Cycles from demand issue to hit-data delivery.
    pub data_transfer_cycles: u64,
    /// Cycles spent executing fill-install probe sequences.
    pub fill_cycles: u64,
    /// Cycles spent executing writeback probe sequences.
    pub writeback_cycles: u64,
}

impl_snapshot!(PhaseCycles {
    tag_probe_cycles: Monotonic,
    data_transfer_cycles: Monotonic,
    fill_cycles: Monotonic,
    writeback_cycles: Monotonic,
});

/// Decision diagnostics of one run, present only when the run executed
/// with [`dice_obs::TraceLevel`] above `Off`. Serialization is the gated
/// part: the underlying counters cost nothing to maintain, but a
/// `TraceLevel::Off` report omits this whole object so its JSON stays
/// byte-identical to pre-diagnostics builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunDiag {
    /// Controller decision counters (confusion matrices, hit attribution,
    /// bandwidth bloat) over the whole run — warmup included, matching
    /// the scope of `cip_accuracy`.
    pub decisions: DecisionDiag,
    /// Per-phase cycle attribution over the measured window only.
    pub phases: PhaseCycles,
}

impl RunDiag {
    fn to_json(self) -> Json {
        Json::Obj(vec![
            ("decisions".into(), snapshot_json(&self.decisions)),
            ("phases".into(), snapshot_json(&self.phases)),
        ])
    }

    fn from_json(j: &Json) -> Option<Self> {
        Some(Self {
            decisions: snapshot_from_json(j.get("decisions")?)?,
            phases: snapshot_from_json(j.get("phases")?)?,
        })
    }
}

/// Everything measured in one run's post-warm-up window.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Workload name.
    pub workload: String,
    /// Cycles to complete the measured window (max over cores).
    pub cycles: Cycle,
    /// Instructions retired per core.
    pub core_instructions: Vec<u64>,
    /// Finish cycle per core.
    pub core_cycles: Vec<Cycle>,
    /// Shared L3 statistics.
    pub l3: CacheStats,
    /// DRAM-cache controller statistics.
    pub l4: L4Stats,
    /// Stacked-DRAM device statistics.
    pub l4_dram: DramStats,
    /// Main-memory device statistics.
    pub mem_dram: DramStats,
    /// CIP read-predictor accuracy over the whole run.
    pub cip_accuracy: f64,
    /// Number of scored CIP predictions.
    pub cip_predictions: u64,
    /// MAP-I accuracy over the whole run.
    pub mapi_accuracy: f64,
    /// Mean resident lines (sampled), for Table 5's effective capacity.
    pub avg_valid_lines: f64,
    /// Mean number of sets holding at least one line (sampled).
    pub avg_occupied_sets: f64,
    /// Baseline line capacity (number of sets).
    pub baseline_lines: u64,
    /// Off-chip energy.
    pub energy: EnergyReport,
    /// Auditor/fault-injection accounting (all zeros on a clean run).
    pub integrity: IntegrityReport,
    /// Per-request-class latency histograms over the measured window.
    pub latency: LatencyPanel,
    /// Interval time series over the measured window (empty when interval
    /// sampling is disabled).
    pub timeline: Vec<IntervalSample>,
    /// Transaction trace ring (empty unless `ObsConfig::trace_capacity`
    /// was set); export with [`dice_obs::export_chrome`].
    pub trace: TraceBuffer,
    /// Decision diagnostics; `None` unless the run's
    /// `ObsConfig::trace_level` was above `Off`.
    pub diag: Option<RunDiag>,
}

impl RunReport {
    /// Per-core IPC over the measured window.
    #[must_use]
    pub fn core_ipc(&self) -> Vec<f64> {
        self.core_instructions
            .iter()
            .zip(&self.core_cycles)
            .map(|(&i, &c)| if c == 0 { 0.0 } else { i as f64 / c as f64 })
            .collect()
    }

    /// Weighted speedup relative to `base` (§3.2): the mean of per-core
    /// IPC ratios.
    #[must_use]
    pub fn weighted_speedup(&self, base: &RunReport) -> f64 {
        let a = self.core_ipc();
        let b = base.core_ipc();
        let n = a.len().min(b.len());
        a.iter()
            .zip(&b)
            .take(n)
            .map(|(x, y)| if *y == 0.0 { 1.0 } else { x / y })
            .sum::<f64>()
            / n as f64
    }

    /// Effective capacity ratio (Table 5): mean resident lines per
    /// *occupied* set. The paper samples valid lines of a fully warm 1 GB
    /// cache; at simulation scale not every set has been touched yet, so
    /// normalizing by occupied sets estimates the same steady-state packing
    /// density without the fill-progress bias.
    #[must_use]
    pub fn capacity_ratio(&self) -> f64 {
        if self.avg_occupied_sets <= 0.0 {
            0.0
        } else {
            self.avg_valid_lines / self.avg_occupied_sets
        }
    }

    /// Serializes the whole report — identity, counters (via the
    /// `dice_obs` snapshot mechanism, so new stats fields appear
    /// automatically), derived metrics, per-class latency quantiles, the
    /// interval time series and energy — as one JSON object.
    ///
    /// The export is **lossless**: [`from_json`] rebuilds a report whose
    /// every field (and therefore its own `to_json` rendering) matches the
    /// original byte for byte. That property is what lets `dice-runner`
    /// persist reports to an on-disk cache and replay them into identical
    /// artifacts.
    ///
    /// [`from_json`]: RunReport::from_json
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut out = Json::Obj(vec![
            ("workload".into(), Json::str(&self.workload)),
            ("cycles".into(), Json::u64(self.cycles)),
            (
                "core_instructions".into(),
                Json::Arr(
                    self.core_instructions
                        .iter()
                        .map(|&i| Json::u64(i))
                        .collect(),
                ),
            ),
            (
                "core_cycles".into(),
                Json::Arr(self.core_cycles.iter().map(|&c| Json::u64(c)).collect()),
            ),
            (
                "core_ipc".into(),
                Json::Arr(self.core_ipc().iter().map(|&v| Json::num(v)).collect()),
            ),
            ("l3".into(), snapshot_json(&self.l3)),
            ("l4".into(), snapshot_json(&self.l4)),
            ("l4_dram".into(), snapshot_json(&self.l4_dram)),
            ("mem_dram".into(), snapshot_json(&self.mem_dram)),
            ("l3_hit_rate".into(), Json::num(self.l3.hit_rate())),
            ("l4_hit_rate".into(), Json::num(self.l4.hit_rate())),
            ("cip_accuracy".into(), Json::num(self.cip_accuracy)),
            ("cip_predictions".into(), Json::u64(self.cip_predictions)),
            ("mapi_accuracy".into(), Json::num(self.mapi_accuracy)),
            ("avg_valid_lines".into(), Json::num(self.avg_valid_lines)),
            (
                "avg_occupied_sets".into(),
                Json::num(self.avg_occupied_sets),
            ),
            ("baseline_lines".into(), Json::u64(self.baseline_lines)),
            ("capacity_ratio".into(), Json::num(self.capacity_ratio())),
            (
                "energy".into(),
                Json::Obj(vec![
                    ("l4_joules".into(), Json::num(self.energy.l4_joules)),
                    ("mem_joules".into(), Json::num(self.energy.mem_joules)),
                    ("total_joules".into(), Json::num(self.energy.total_joules())),
                    ("power_watts".into(), Json::num(self.energy.power_watts())),
                    ("cycles".into(), Json::u64(self.energy.cycles)),
                ]),
            ),
            ("integrity".into(), self.integrity.to_json()),
            ("latency".into(), self.latency.to_json()),
            (
                "timeline".into(),
                Json::Arr(self.timeline.iter().map(IntervalSample::to_json).collect()),
            ),
            ("trace".into(), self.trace.to_json()),
        ]);
        // The diag key exists only on diagnostics-enabled runs, keeping
        // TraceLevel::Off output byte-identical to pre-diagnostics builds.
        if let (Json::Obj(pairs), Some(diag)) = (&mut out, &self.diag) {
            pairs.push(("diag".into(), diag.to_json()));
        }
        out
    }

    /// Rebuilds a report from [`to_json`] output. Derived quantities
    /// (IPC, hit rates, capacity ratio, energy totals) are recomputed from
    /// the primary fields, so `from_json(j).to_json()` re-renders `j`
    /// byte-identically. Returns `None` for malformed or truncated
    /// documents — the persistent cache treats that as a miss, never a
    /// panic.
    ///
    /// [`to_json`]: RunReport::to_json
    #[must_use]
    pub fn from_json(j: &Json) -> Option<RunReport> {
        fn u64_vec(v: &Json) -> Option<Vec<u64>> {
            v.as_arr()?.iter().map(Json::as_u64).collect()
        }
        let energy = j.get("energy")?;
        Some(RunReport {
            workload: j.get("workload")?.as_str()?.to_owned(),
            cycles: j.get("cycles")?.as_u64()?,
            core_instructions: u64_vec(j.get("core_instructions")?)?,
            core_cycles: u64_vec(j.get("core_cycles")?)?,
            l3: snapshot_from_json(j.get("l3")?)?,
            l4: snapshot_from_json(j.get("l4")?)?,
            l4_dram: snapshot_from_json(j.get("l4_dram")?)?,
            mem_dram: snapshot_from_json(j.get("mem_dram")?)?,
            cip_accuracy: j.get("cip_accuracy")?.as_f64()?,
            cip_predictions: j.get("cip_predictions")?.as_u64()?,
            mapi_accuracy: j.get("mapi_accuracy")?.as_f64()?,
            avg_valid_lines: j.get("avg_valid_lines")?.as_f64()?,
            avg_occupied_sets: j.get("avg_occupied_sets")?.as_f64()?,
            baseline_lines: j.get("baseline_lines")?.as_u64()?,
            energy: EnergyReport {
                l4_joules: energy.get("l4_joules")?.as_f64()?,
                mem_joules: energy.get("mem_joules")?.as_f64()?,
                cycles: energy.get("cycles")?.as_u64()?,
            },
            integrity: IntegrityReport::from_json(j.get("integrity")?)?,
            latency: LatencyPanel::from_json(j.get("latency")?)?,
            timeline: j
                .get("timeline")?
                .as_arr()?
                .iter()
                .map(IntervalSample::from_json)
                .collect::<Option<Vec<_>>>()?,
            trace: TraceBuffer::from_json(j.get("trace")?)?,
            // Tolerant read: pre-diagnostics documents (and Off-level
            // runs) simply have no diag key.
            diag: j.get("diag").and_then(RunDiag::from_json),
        })
    }

    /// Builds the energy report from device stats and models.
    pub(crate) fn energy_of(
        l4_stats: &DramStats,
        mem_stats: &DramStats,
        cycles: Cycle,
    ) -> EnergyReport {
        EnergyReport {
            l4_joules: EnergyModel::stacked().total_energy(l4_stats, cycles),
            mem_joules: EnergyModel::ddr().total_energy(mem_stats, cycles),
            cycles,
        }
    }
}

/// Geometric mean of a slice of ratios (the paper's averaging rule).
#[must_use]
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(instr: u64, cycles: Cycle) -> RunReport {
        RunReport {
            workload: "t".into(),
            cycles,
            core_instructions: vec![instr; 4],
            core_cycles: vec![cycles; 4],
            l3: CacheStats::default(),
            l4: L4Stats::default(),
            l4_dram: DramStats::default(),
            mem_dram: DramStats::default(),
            cip_accuracy: 1.0,
            cip_predictions: 0,
            mapi_accuracy: 1.0,
            avg_valid_lines: 0.0,
            avg_occupied_sets: 1.0,
            baseline_lines: 100,
            energy: EnergyReport {
                l4_joules: 1.0,
                mem_joules: 2.0,
                cycles,
            },
            integrity: IntegrityReport::default(),
            latency: LatencyPanel::new(),
            timeline: Vec::new(),
            trace: TraceBuffer::default(),
            diag: None,
        }
    }

    #[test]
    fn weighted_speedup_of_identical_runs_is_one() {
        let r = report(1000, 500);
        assert!((r.weighted_speedup(&r) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn faster_run_speeds_up() {
        let slow = report(1000, 1000);
        let fast = report(1000, 500);
        assert!((fast.weighted_speedup(&slow) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn energy_totals_and_edp() {
        let e = EnergyReport {
            l4_joules: 1.0,
            mem_joules: 2.0,
            cycles: 3_200_000_000,
        };
        assert!((e.total_joules() - 3.0).abs() < 1e-12);
        assert!((e.power_watts() - 3.0).abs() < 1e-12);
        assert!((e.edp() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn json_round_trip_is_byte_identical() {
        let mut r = report(1000, 500);
        r.l4.reads = 42;
        r.l4.read_hits = 17;
        r.mem_dram.bytes = 4096;
        r.cip_accuracy = 0.9381;
        r.avg_valid_lines = 123.456;
        r.integrity.audits = 9;
        r.integrity.violations = 2;
        r.integrity.l4_sets_refilled = 2;
        r.latency.record(dice_obs::RequestClass::ReadHit, 44);
        r.latency.record(dice_obs::RequestClass::ReadMiss, 301);
        let text = r.to_json().render();
        let back = RunReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.to_json().render(), text);
        assert_eq!(back.cycles, r.cycles);
        assert_eq!(back.core_cycles, r.core_cycles);
        assert_eq!(back.l4.read_hits, 17);
        assert_eq!(back.integrity, r.integrity);
        assert!((back.weighted_speedup(&r) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn diag_round_trips_and_off_reports_omit_the_key() {
        let off = report(10, 5);
        assert!(!off.to_json().render().contains("\"diag\""));

        let mut on = report(10, 5);
        on.diag = Some(RunDiag {
            decisions: DecisionDiag {
                cip_read_bai_bai: 7,
                cip_fill_tsi_tsi: 3,
                bytes_moved: 800,
                bytes_needed: 640,
                ..DecisionDiag::default()
            },
            phases: PhaseCycles {
                tag_probe_cycles: 11,
                data_transfer_cycles: 22,
                fill_cycles: 33,
                writeback_cycles: 44,
            },
        });
        let text = on.to_json().render();
        assert!(text.contains("\"diag\""));
        let back = RunReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.diag, on.diag);
        assert_eq!(back.to_json().render(), text);
        // An old-format document (no diag key) still loads.
        let old = RunReport::from_json(&Json::parse(&off.to_json().render()).unwrap()).unwrap();
        assert_eq!(old.diag, None);
    }

    #[test]
    fn from_json_rejects_truncated_documents() {
        let r = report(10, 5);
        let Json::Obj(mut pairs) = r.to_json() else {
            panic!("report serializes as an object")
        };
        pairs.retain(|(k, _)| k != "l4");
        assert!(RunReport::from_json(&Json::Obj(pairs)).is_none());
        assert!(RunReport::from_json(&Json::Null).is_none());
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 0.5]) - 1.0).abs() < 1e-12);
        assert!((geomean(&[4.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 1.0);
    }
}
