//! Hierarchical timing wheel: the simulator's event queue.
//!
//! A discrete-event simulator pops events in nondecreasing time order and
//! only ever schedules into the future, so a general-purpose priority
//! queue (the old `BinaryHeap<Reverse<Event>>`) pays for flexibility the
//! workload never uses. This wheel exploits the monotone clock:
//!
//! * **Layout** — [`LEVELS`] levels of 64 slots each. Level `l` slot `s`
//!   holds every pending event whose due time matches the wheel clock on
//!   all bits above `6·(l+1)` and has `s` in bit field `[6·l, 6·(l+1))`.
//!   Level 0 slots therefore each hold exactly one due *cycle*; higher
//!   levels hold geometrically wider windows. 64⁰…64¹⁰ spans the full
//!   `u64` cycle range, so there is no overflow list.
//! * **Push** — O(1): the target level is the highest 6-bit digit in
//!   which the due time differs from the wheel clock (`t ^ now`).
//! * **Pop** — find the lowest non-empty level via a per-level occupancy
//!   bitmask (`trailing_zeros`, no slot scanning). Level 0 pops directly;
//!   a higher level *cascades* its earliest slot — redistributes the
//!   slot's events one level down — and retries. Each event cascades at
//!   most once per level, so total queue cost is O(levels) amortized,
//!   with the common case (due time within 64 cycles) a single array
//!   index.
//! * **Tie-break contract** — events at equal due cycles pop in schedule
//!   (FIFO) order, tracked by an explicit monotone sequence number. The
//!   old heap ordered by `(time, seq)`; the wheel preserves exactly that
//!   order: slots are FIFO deques, pushes are appends, and a cascade
//!   replays a slot front-to-back into (provably empty) lower levels, so
//!   relative order of equal-time events is never disturbed. The
//!   differential tests in `tests/differential.rs` hold the two engines
//!   byte-identical over the experiment matrix.
//!
//! Events live in a single node pool with an intrusive free list; slots
//! are intrusive FIFO lists threaded through the pool. The pool only
//! grows when the number of *simultaneously* pending events reaches a
//! new maximum, so once warmed the simulation loop schedules, cascades
//! and pops without heap allocation — per-slot buffers would instead
//! keep allocating whenever any one of the 704 slots saw a new local
//! maximum occupancy.

use crate::Cycle;

/// Bits per level: 64 slots.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Levels needed so `64^LEVELS` covers the full `u64` cycle range
/// (`6 * 11 = 66 >= 64` bits).
const LEVELS: usize = 11;

/// One queued event: due time, FIFO tie-break, payload.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Scheduled<T> {
    /// Due cycle.
    pub time: Cycle,
    /// Monotone schedule order; equal-time events pop in `seq` order.
    pub seq: u64,
    /// The event itself.
    pub payload: T,
}

/// Null index for the intrusive lists.
const NIL: usize = usize::MAX;

/// A pool slot: the scheduled event plus its intrusive `next` link
/// (successor within its wheel slot's FIFO list, or the next free node
/// while on the free list).
struct Node<T> {
    entry: Scheduled<T>,
    next: usize,
}

/// One wheel slot: head/tail indices of its FIFO list in the pool.
#[derive(Clone, Copy)]
struct Slot {
    head: usize,
    tail: usize,
}

const EMPTY_SLOT: Slot = Slot {
    head: NIL,
    tail: NIL,
};

struct Level {
    slots: [Slot; SLOTS],
    /// Bit `s` set ⇔ `slots[s]` is non-empty.
    occupied: u64,
}

impl Level {
    fn new() -> Self {
        Self {
            slots: [EMPTY_SLOT; SLOTS],
            occupied: 0,
        }
    }
}

/// The wheel. `now` is the engine clock: it trails the minimum pending
/// due time, advances on every pop, and every push must be `>= now`
/// (the discrete-event invariant; checked in debug builds).
pub(crate) struct EventWheel<T> {
    levels: Vec<Level>,
    pool: Vec<Node<T>>,
    /// Head of the free-node list threaded through `pool[..].next`.
    free: usize,
    now: Cycle,
    len: usize,
    seq: u64,
    cascades: u64,
}

impl<T: Copy> EventWheel<T> {
    pub fn new() -> Self {
        Self {
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            pool: Vec::new(),
            free: NIL,
            now: 0,
            len: 0,
            seq: 0,
            cascades: 0,
        }
    }

    /// Pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Slot cascades performed so far (the `sim.wheel_cascades` metric).
    pub fn cascades(&self) -> u64 {
        self.cascades
    }

    /// The level an event due at `t` belongs to, relative to clock `now`:
    /// the highest 6-bit digit where they differ (0 when equal).
    #[inline]
    fn level_of(now: Cycle, t: Cycle) -> usize {
        let diff = now ^ t;
        if diff == 0 {
            0
        } else {
            ((63 - diff.leading_zeros()) / SLOT_BITS) as usize
        }
    }

    #[inline]
    fn slot_of(t: Cycle, level: usize) -> usize {
        ((t >> (SLOT_BITS as usize * level)) & (SLOTS as u64 - 1)) as usize
    }

    /// Files pool node `idx` without assigning a new sequence number
    /// (shared by push and cascade; cascaded events keep their original
    /// `seq`). Appends to the target slot's FIFO list.
    #[inline]
    fn place(&mut self, idx: usize) {
        let time = self.pool[idx].entry.time;
        let level = Self::level_of(self.now, time);
        let slot = Self::slot_of(time, level);
        self.pool[idx].next = NIL;
        let tail = self.levels[level].slots[slot].tail;
        if tail == NIL {
            self.levels[level].slots[slot].head = idx;
        } else {
            self.pool[tail].next = idx;
        }
        self.levels[level].slots[slot].tail = idx;
        self.levels[level].occupied |= 1 << slot;
    }

    /// Rewinds the clock of an *empty* wheel to `time` (no-op when the
    /// clock is already at or below it). A new simulation phase may start
    /// below the previous phase's final event; callers pushing several
    /// seed events rewind to their minimum first so every push satisfies
    /// the `time >= now` invariant.
    pub fn rewind(&mut self, time: Cycle) {
        debug_assert_eq!(self.len, 0, "rewind only valid on an empty wheel");
        if time < self.now {
            self.now = time;
        }
    }

    /// Schedules `payload` at `time`, assigning the next sequence number.
    ///
    /// `time` must be `>= `the wheel clock, except when the wheel is
    /// empty — then the clock rewinds to `time` automatically.
    pub fn push(&mut self, time: Cycle, payload: T) {
        if self.len == 0 && time < self.now {
            self.now = time;
        }
        debug_assert!(time >= self.now, "event scheduled in the past");
        self.seq += 1;
        let entry = Scheduled {
            time,
            seq: self.seq,
            payload,
        };
        // Recycle a free node when one exists; the pool only grows on a
        // new maximum of simultaneously pending events.
        let idx = if self.free != NIL {
            let idx = self.free;
            self.free = self.pool[idx].next;
            self.pool[idx].entry = entry;
            idx
        } else {
            self.pool.push(Node { entry, next: NIL });
            self.pool.len() - 1
        };
        self.place(idx);
        self.len += 1;
    }

    /// A lower bound on the earliest pending due time (`None` when
    /// empty). Exact when the earliest event sits at level 0 — the common
    /// case — and otherwise the start of its level's slot window, which
    /// is never above the true minimum. The dispatch-chaining fast path
    /// compares strictly against this bound, so an inexact bound can only
    /// suppress a chain (costing a queue round-trip), never reorder one.
    pub fn earliest_bound(&self) -> Option<Cycle> {
        if self.len == 0 {
            return None;
        }
        for (level, l) in self.levels.iter().enumerate() {
            if l.occupied != 0 {
                let slot = l.occupied.trailing_zeros() as u64;
                let shift = SLOT_BITS as usize * level;
                let above = SLOT_BITS as usize * (level + 1);
                // Keep the clock's digits above this level, substitute the
                // slot index at this level, zero everything below.
                let high = if above >= 64 {
                    0
                } else {
                    (self.now >> above) << above
                };
                return Some(high | (slot << shift));
            }
        }
        None
    }

    /// Pops the earliest event (FIFO among equal due times) and advances
    /// the clock to its due time.
    pub fn pop(&mut self) -> Option<Scheduled<T>> {
        if self.len == 0 {
            return None;
        }
        loop {
            // Find the lowest non-empty level. Lower levels hold strictly
            // earlier windows (their whole range nests inside the current
            // slot of every level above), so the first hit is the level
            // of the global minimum.
            let level = self
                .levels
                .iter()
                .position(|l| l.occupied != 0)
                .expect("len > 0 but every level empty");
            let slot = self.levels[level].occupied.trailing_zeros() as usize;
            if level == 0 {
                // A level-0 slot holds exactly one due cycle, FIFO.
                let idx = self.levels[0].slots[slot].head;
                debug_assert_ne!(idx, NIL, "occupied bit set on empty slot");
                let next = self.pool[idx].next;
                let entry = self.pool[idx].entry;
                // The tie-break contract: a level-0 slot holds one due
                // cycle, and FIFO appends keep it sorted by seq.
                debug_assert!(next == NIL || self.pool[next].entry.seq > entry.seq);
                self.levels[0].slots[slot].head = next;
                if next == NIL {
                    self.levels[0].slots[slot].tail = NIL;
                    self.levels[0].occupied &= !(1 << slot);
                }
                // Return the node to the free list.
                self.pool[idx].next = self.free;
                self.free = idx;
                self.len -= 1;
                self.now = entry.time;
                return Some(entry);
            }
            // Cascade: advance the clock to the slot's window start, then
            // replay the slot one level down. Every level below is empty
            // (we just chose the lowest), so the replay lands in empty
            // slots and preserves FIFO order among equal due times. Pure
            // pointer relinking — no node moves, no allocation.
            let shift = SLOT_BITS as usize * level;
            let above = SLOT_BITS as usize * (level + 1);
            let high = if above >= 64 {
                0
            } else {
                (self.now >> above) << above
            };
            self.now = high | ((slot as u64) << shift);
            let s = self.levels[level].slots[slot];
            self.levels[level].slots[slot] = EMPTY_SLOT;
            self.levels[level].occupied &= !(1 << slot);
            let mut idx = s.head;
            while idx != NIL {
                let next = self.pool[idx].next;
                debug_assert!(Self::level_of(self.now, self.pool[idx].entry.time) < level);
                self.place(idx);
                idx = next;
            }
            self.cascades += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pops the wheel dry, returning `(time, seq)` pairs.
    fn drain(w: &mut EventWheel<u32>) -> Vec<(Cycle, u64)> {
        let mut out = Vec::new();
        while let Some(e) = w.pop() {
            out.push((e.time, e.seq));
        }
        out
    }

    #[test]
    fn pops_in_time_order_across_levels() {
        let mut w = EventWheel::new();
        for &t in &[5_000_000u64, 3, 70, 64, 4096, 65, 0, 1 << 40] {
            w.push(t, 0u32);
        }
        let times: Vec<Cycle> = drain(&mut w).iter().map(|&(t, _)| t).collect();
        assert_eq!(times, vec![0, 3, 64, 65, 70, 4096, 5_000_000, 1 << 40]);
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn equal_times_pop_in_schedule_order() {
        let mut w = EventWheel::new();
        // Same due cycle scheduled from different clock positions: one
        // lands far out (level > 0), later ones land nearby after the
        // clock advances — all must still pop FIFO by seq.
        w.push(500, 1u32);
        w.push(10, 0);
        assert_eq!(w.pop().unwrap().time, 10); // clock now 10
        w.push(500, 2);
        w.push(500, 3);
        let rest = drain(&mut w);
        assert_eq!(rest.iter().map(|&(t, _)| t).collect::<Vec<_>>(), [500; 3]);
        let seqs: Vec<u64> = rest.iter().map(|&(_, s)| s).collect();
        assert!(
            seqs.windows(2).all(|p| p[0] < p[1]),
            "FIFO broken: {seqs:?}"
        );
    }

    #[test]
    fn interleaved_push_pop_stays_sorted() {
        // Deterministic pseudo-random schedule pattern mimicking the sim:
        // always push at or after the last popped time.
        let mut w = EventWheel::new();
        let mut x = 0x5eedu64;
        let mut clock = 0u64;
        let mut popped = Vec::new();
        for step in 0..10_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let delta = x >> 52; // 0..4096
            w.push(clock + delta, step as u32);
            if step % 3 != 0 {
                let e = w.pop().unwrap();
                assert!(e.time >= clock, "popped {} before clock {clock}", e.time);
                clock = e.time;
                popped.push(e.time);
            }
        }
        popped.extend(drain(&mut w).iter().map(|&(t, _)| t));
        assert!(popped.windows(2).all(|p| p[0] <= p[1]));
        assert_eq!(popped.len(), 10_000);
        assert!(w.cascades() > 0, "pattern must exercise cascading");
    }

    #[test]
    fn earliest_bound_is_a_sound_lower_bound() {
        let mut w = EventWheel::new();
        assert_eq!(w.earliest_bound(), None);
        w.push(7, 0u32);
        assert_eq!(w.earliest_bound(), Some(7), "level 0 bound is exact");
        w.push(100_000, 1);
        assert_eq!(w.earliest_bound(), Some(7));
        assert_eq!(w.pop().unwrap().time, 7);
        let bound = w.earliest_bound().unwrap();
        assert!(bound <= 100_000, "bound {bound} above the true minimum");
        assert!(bound > 7, "bound must advance past the popped event");
    }

    #[test]
    fn clock_rewinds_only_when_empty() {
        let mut w = EventWheel::new();
        w.push(1_000, 0u32);
        assert_eq!(w.pop().unwrap().time, 1_000);
        // Next phase starts below the previous phase's last event.
        w.push(50, 1);
        w.push(60, 2);
        assert_eq!(w.pop().unwrap().time, 50);
        assert_eq!(w.pop().unwrap().time, 60);
    }
}
