//! Trace-driven out-of-order core approximation.
//!
//! Each core executes `(gap, access)` records. Non-memory instructions
//! retire at `base_cpi` cycles each; memory accesses enter a window of up
//! to `mlp` outstanding operations. When the window is full, dispatch
//! stalls until the oldest outstanding access completes. This is the
//! standard "limit study" core used across the DRAM-cache literature: it
//! overlaps independent misses (bandwidth-sensitive) while still charging
//! serialized latency when parallelism runs out (latency-sensitive).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::Cycle;

/// One core's dispatch/retire state.
#[derive(Debug, Clone)]
pub struct CoreModel {
    dispatch: f64,
    outstanding: BinaryHeap<Reverse<Cycle>>,
    mlp: usize,
    base_cpi: f64,
    instructions: u64,
}

impl CoreModel {
    /// A core with an empty pipeline at time 0.
    ///
    /// # Panics
    ///
    /// Panics if `mlp` is zero.
    #[must_use]
    pub fn new(mlp: usize, base_cpi: f64) -> Self {
        assert!(mlp > 0, "a core needs at least one outstanding slot");
        Self {
            dispatch: 0.0,
            outstanding: BinaryHeap::new(),
            mlp,
            base_cpi,
            instructions: 0,
        }
    }

    /// Advances past `gap` non-memory instructions and returns the cycle at
    /// which the next memory access dispatches.
    pub fn advance(&mut self, gap: u64) -> Cycle {
        self.instructions += gap + 1; // the gap plus the memory instruction
        self.dispatch += gap as f64 * self.base_cpi;
        self.dispatch as Cycle
    }

    /// Records the completion time of the access dispatched by the last
    /// [`advance`](Self::advance); stalls dispatch if the window is full.
    pub fn complete(&mut self, done: Cycle) {
        self.outstanding.push(Reverse(done));
        if self.outstanding.len() > self.mlp {
            let Reverse(oldest) = self.outstanding.pop().expect("window non-empty");
            self.dispatch = self.dispatch.max(oldest as f64);
        }
    }

    /// The next dispatch time (for event ordering).
    #[must_use]
    pub fn next_dispatch(&self) -> Cycle {
        self.dispatch as Cycle
    }

    /// Instructions retired so far.
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Cycle at which everything in flight has drained.
    #[must_use]
    pub fn finish_time(&self) -> Cycle {
        let drain = self
            .outstanding
            .iter()
            .map(|Reverse(c)| *c)
            .max()
            .unwrap_or(0);
        drain.max(self.dispatch as Cycle)
    }

    /// Resets the instruction counter (end of warm-up) without disturbing
    /// timing state.
    pub fn reset_instructions(&mut self) {
        self.instructions = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_advances_at_base_cpi() {
        let mut c = CoreModel::new(4, 0.25);
        assert_eq!(c.advance(100), 25);
        assert_eq!(c.instructions(), 101);
    }

    #[test]
    fn window_overlaps_independent_misses() {
        let mut c = CoreModel::new(4, 0.25);
        // Four 200-cycle misses dispatched back to back: no stall yet.
        for _ in 0..4 {
            let t = c.advance(4);
            c.complete(t + 200);
        }
        assert!(c.next_dispatch() < 10, "window absorbs 4 misses");
    }

    #[test]
    fn full_window_stalls_on_oldest() {
        let mut c = CoreModel::new(2, 0.25);
        let t0 = c.advance(0);
        c.complete(t0 + 100);
        let t1 = c.advance(0);
        c.complete(t1 + 300);
        // Third access: window (2) full → dispatch waits for the oldest
        // completion at 100.
        let _ = c.advance(0);
        c.complete(500);
        assert!(c.next_dispatch() >= 100);
    }

    #[test]
    fn finish_time_covers_in_flight_work() {
        let mut c = CoreModel::new(8, 0.25);
        let t = c.advance(10);
        c.complete(t + 400);
        assert_eq!(c.finish_time(), t + 400);
    }

    #[test]
    fn faster_memory_means_earlier_finish() {
        let run = |lat: Cycle| {
            let mut c = CoreModel::new(2, 0.25);
            for _ in 0..100 {
                let t = c.advance(8);
                c.complete(t + lat);
            }
            c.finish_time()
        };
        assert!(run(50) < run(400));
    }
}
