//! Trace-driven out-of-order core approximation.
//!
//! Each core executes `(gap, access)` records. Non-memory instructions
//! retire at `base_cpi` cycles each; memory accesses enter a window of up
//! to `mlp` outstanding operations. When the window is full, dispatch
//! stalls until the oldest outstanding access completes. This is the
//! standard "limit study" core used across the DRAM-cache literature: it
//! overlaps independent misses (bandwidth-sensitive) while still charging
//! serialized latency when parallelism runs out (latency-sensitive).

use dice_core::InlineVec;

use crate::Cycle;

/// Inline capacity of the completion window: the paper's `mlp` is 16, and
/// the transient `mlp + 1`-th entry (pushed before the oldest is retired)
/// must also stay inline for the window to be allocation-free.
const WINDOW_INLINE: usize = 24;

/// One core's dispatch/retire state.
///
/// The completion window is a small sorted array (descending, so the
/// oldest completion pops from the end in O(1)) rather than a heap: `mlp`
/// is small, inserts are a shift within one cache line or two, and the
/// steady-state record loop performs **zero heap allocations** — the
/// contract the simulator-level counting-allocator test enforces.
#[derive(Debug, Clone)]
pub struct CoreModel {
    dispatch: f64,
    /// Outstanding completion times, sorted descending (min at the end).
    outstanding: InlineVec<Cycle, WINDOW_INLINE>,
    mlp: usize,
    base_cpi: f64,
    instructions: u64,
}

impl CoreModel {
    /// A core with an empty pipeline at time 0.
    ///
    /// # Panics
    ///
    /// Panics if `mlp` is zero.
    #[must_use]
    pub fn new(mlp: usize, base_cpi: f64) -> Self {
        assert!(mlp > 0, "a core needs at least one outstanding slot");
        Self {
            dispatch: 0.0,
            outstanding: InlineVec::new(),
            mlp,
            base_cpi,
            instructions: 0,
        }
    }

    /// Advances past `gap` non-memory instructions and returns the cycle at
    /// which the next memory access dispatches.
    pub fn advance(&mut self, gap: u64) -> Cycle {
        self.instructions += gap + 1; // the gap plus the memory instruction
        self.dispatch += gap as f64 * self.base_cpi;
        self.dispatch as Cycle
    }

    /// Records the completion time of the access dispatched by the last
    /// [`advance`](Self::advance); stalls dispatch if the window is full.
    pub fn complete(&mut self, done: Cycle) {
        // Descending order: new completions usually land near the front,
        // and `partition_point` keeps equal values FIFO-stable (ties are
        // indistinguishable `Cycle`s, so stability is moot but free).
        let idx = self.outstanding.partition_point(|&c| c > done);
        self.outstanding.insert(idx, done);
        if self.outstanding.len() > self.mlp {
            let oldest = self.outstanding.pop().expect("window non-empty");
            self.dispatch = self.dispatch.max(oldest as f64);
        }
    }

    /// The next dispatch time (for event ordering).
    #[must_use]
    pub fn next_dispatch(&self) -> Cycle {
        self.dispatch as Cycle
    }

    /// Instructions retired so far.
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Cycle at which everything in flight has drained.
    #[must_use]
    pub fn finish_time(&self) -> Cycle {
        let drain = self.outstanding.first().copied().unwrap_or(0);
        drain.max(self.dispatch as Cycle)
    }

    /// Resets the instruction counter (end of warm-up) without disturbing
    /// timing state.
    pub fn reset_instructions(&mut self) {
        self.instructions = 0;
    }

    /// Whether the completion window has ever spilled to the heap (only
    /// possible when `mlp` exceeds the inline capacity); introspection for
    /// the allocation-free test.
    #[doc(hidden)]
    #[must_use]
    pub fn window_is_inline(&self) -> bool {
        self.outstanding.is_inline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_advances_at_base_cpi() {
        let mut c = CoreModel::new(4, 0.25);
        assert_eq!(c.advance(100), 25);
        assert_eq!(c.instructions(), 101);
    }

    #[test]
    fn window_overlaps_independent_misses() {
        let mut c = CoreModel::new(4, 0.25);
        // Four 200-cycle misses dispatched back to back: no stall yet.
        for _ in 0..4 {
            let t = c.advance(4);
            c.complete(t + 200);
        }
        assert!(c.next_dispatch() < 10, "window absorbs 4 misses");
    }

    #[test]
    fn full_window_stalls_on_oldest() {
        let mut c = CoreModel::new(2, 0.25);
        let t0 = c.advance(0);
        c.complete(t0 + 100);
        let t1 = c.advance(0);
        c.complete(t1 + 300);
        // Third access: window (2) full → dispatch waits for the oldest
        // completion at 100.
        let _ = c.advance(0);
        c.complete(500);
        assert!(c.next_dispatch() >= 100);
    }

    #[test]
    fn finish_time_covers_in_flight_work() {
        let mut c = CoreModel::new(8, 0.25);
        let t = c.advance(10);
        c.complete(t + 400);
        assert_eq!(c.finish_time(), t + 400);
    }

    #[test]
    fn faster_memory_means_earlier_finish() {
        let run = |lat: Cycle| {
            let mut c = CoreModel::new(2, 0.25);
            for _ in 0..100 {
                let t = c.advance(8);
                c.complete(t + lat);
            }
            c.finish_time()
        };
        assert!(run(50) < run(400));
    }

    /// The sorted-array window must retire completions in the same order
    /// the old binary heap did: always the minimum outstanding time.
    #[test]
    fn window_retires_minimum_first_out_of_order_completions() {
        let mut c = CoreModel::new(3, 1.0);
        for done in [900, 100, 500] {
            let _ = c.advance(0);
            c.complete(done);
        }
        // Window full (3): the next completion evicts the oldest (100).
        let _ = c.advance(0);
        c.complete(700);
        assert_eq!(c.next_dispatch(), 100); // stalled to the oldest (100)
        assert_eq!(c.finish_time(), 900);
        // Next eviction retires 500, not 700.
        let _ = c.advance(0);
        c.complete(800);
        assert!(c.next_dispatch() >= 500);
    }

    /// Paper-default `mlp` (16) plus the transient extra entry stays
    /// inline — no heap allocation in the steady-state loop.
    #[test]
    fn paper_mlp_window_never_spills() {
        let mut c = CoreModel::new(16, 0.25);
        for i in 0..1_000u64 {
            let t = c.advance(3);
            c.complete(t + 200 + (i * 37) % 400);
            assert!(c.window_is_inline());
        }
    }
}
