//! Interval time series: windowed stats sampled during the measured run.

use dice_core::L4Stats;
use dice_dram::DramStats;
use dice_obs::{ratio, snapshot_from_json, snapshot_json, Json};

use crate::Cycle;

/// One window of the interval time series.
///
/// The stats structs hold **windowed deltas** — activity inside this
/// interval only, not cumulative counts — so plotting any counter over the
/// sample sequence directly shows phase behavior.
#[derive(Debug, Clone)]
pub struct IntervalSample {
    /// Cycle at which the window closed.
    pub end_cycle: Cycle,
    /// Cycles covered by this window.
    pub cycles: Cycle,
    /// L4 controller activity inside the window.
    pub l4: L4Stats,
    /// Stacked-DRAM activity inside the window.
    pub l4_dram: DramStats,
    /// Main-memory activity inside the window.
    pub mem_dram: DramStats,
    /// Resident lines at the window close.
    pub valid_lines: u64,
    /// Sets holding at least one line at the window close.
    pub occupied_sets: u64,
}

impl IntervalSample {
    /// L4 read hit rate inside the window.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        self.l4.hit_rate()
    }

    /// Free lines delivered per L4 read inside the window.
    #[must_use]
    pub fn free_line_rate(&self) -> f64 {
        ratio(self.l4.free_lines, self.l4.reads)
    }

    /// Stacked-DRAM bytes moved per cycle inside the window.
    #[must_use]
    pub fn l4_bytes_per_cycle(&self) -> f64 {
        ratio(self.l4_dram.bytes, self.cycles)
    }

    /// Main-memory bytes moved per cycle inside the window.
    #[must_use]
    pub fn mem_bytes_per_cycle(&self) -> f64 {
        ratio(self.mem_dram.bytes, self.cycles)
    }

    /// Serializes the window: boundary, derived rates, and the three
    /// windowed counter sets in full.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("end_cycle".into(), Json::u64(self.end_cycle)),
            ("cycles".into(), Json::u64(self.cycles)),
            ("hit_rate".into(), Json::num(self.hit_rate())),
            ("free_line_rate".into(), Json::num(self.free_line_rate())),
            (
                "l4_bytes_per_cycle".into(),
                Json::num(self.l4_bytes_per_cycle()),
            ),
            (
                "mem_bytes_per_cycle".into(),
                Json::num(self.mem_bytes_per_cycle()),
            ),
            ("valid_lines".into(), Json::u64(self.valid_lines)),
            ("occupied_sets".into(), Json::u64(self.occupied_sets)),
            ("l4".into(), snapshot_json(&self.l4)),
            ("l4_dram".into(), snapshot_json(&self.l4_dram)),
            ("mem_dram".into(), snapshot_json(&self.mem_dram)),
        ])
    }

    /// Rebuilds a sample from [`to_json`] output (the derived rates are
    /// recomputed from the counters, so the round-trip re-renders
    /// identically). Returns `None` for malformed documents.
    ///
    /// [`to_json`]: IntervalSample::to_json
    #[must_use]
    pub fn from_json(j: &Json) -> Option<IntervalSample> {
        Some(IntervalSample {
            end_cycle: j.get("end_cycle")?.as_u64()?,
            cycles: j.get("cycles")?.as_u64()?,
            l4: snapshot_from_json(j.get("l4")?)?,
            l4_dram: snapshot_from_json(j.get("l4_dram")?)?,
            mem_dram: snapshot_from_json(j.get("mem_dram")?)?,
            valid_lines: j.get("valid_lines")?.as_u64()?,
            occupied_sets: j.get("occupied_sets")?.as_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates_follow_idle_convention() {
        let s = IntervalSample {
            end_cycle: 1_000,
            cycles: 0,
            l4: L4Stats::default(),
            l4_dram: DramStats::default(),
            mem_dram: DramStats::default(),
            valid_lines: 0,
            occupied_sets: 0,
        };
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.free_line_rate(), 0.0);
        assert_eq!(s.l4_bytes_per_cycle(), 0.0);
    }

    #[test]
    fn json_has_installs_by_index() {
        let s = IntervalSample {
            end_cycle: 2_000,
            cycles: 1_000,
            l4: L4Stats {
                reads: 10,
                read_hits: 5,
                installs_bai: 3,
                ..L4Stats::default()
            },
            l4_dram: DramStats {
                bytes: 640,
                ..DramStats::default()
            },
            mem_dram: DramStats::default(),
            valid_lines: 7,
            occupied_sets: 4,
        };
        let j = s.to_json();
        assert_eq!(
            j.get("l4").unwrap().get("installs_bai"),
            Some(&Json::Int(3))
        );
        assert_eq!(j.get("hit_rate").unwrap().as_f64(), Some(0.5));
        assert_eq!(j.get("l4_bytes_per_cycle").unwrap().as_f64(), Some(0.64));
    }
}
