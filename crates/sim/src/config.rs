//! Simulation configuration (paper Table 2, with a scale knob).

use dice_cache::L3FetchPolicy;
use dice_core::{DramCacheConfig, FaultPlan, Organization};
use dice_dram::DramConfig;
use dice_ingest::TraceBinding;
use dice_obs::ObsConfig;
use dice_workloads::WorkloadSpec;

use crate::Cycle;

/// Full system configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of cores (8 in the paper).
    pub cores: usize,
    /// Shared L3 capacity in bytes (8 MB in the paper).
    pub l3_bytes: usize,
    /// L3 associativity.
    pub l3_ways: usize,
    /// L3 hit latency in CPU cycles.
    pub l3_hit_latency: Cycle,
    /// DRAM-cache controller configuration.
    pub l4: DramCacheConfig,
    /// Stacked-DRAM timing for the L4.
    pub l4_dram: DramConfig,
    /// DDR timing for main memory.
    pub mem_dram: DramConfig,
    /// L3 fetch policy (Table 7 baselines).
    pub l3_fetch: L3FetchPolicy,
    /// Install the free pair line into L3 on compressed hits (§6.4); the
    /// ablation benches turn this off.
    pub install_pair_in_l3: bool,
    /// Maximum outstanding L3-level accesses per core (memory-level
    /// parallelism window).
    pub mlp: usize,
    /// Cycles per non-memory instruction (0.25 = 4-wide issue).
    pub base_cpi: f64,
    /// Footprint scale divisor (the experiment harness defaults to 256;
    /// see DESIGN.md §3).
    pub scale: u64,
    /// Trace records per core during warm-up (not measured).
    pub warmup_records: u64,
    /// Trace records per core in the measured window.
    pub measure_records: u64,
    /// Observability knobs: interval time-series sampling and the
    /// transaction trace (see `dice_obs::ObsConfig`).
    pub obs: ObsConfig,
    /// Run the invariant auditor every this many demand records (0
    /// disables it). The audit is read-only on a healthy system, so an
    /// audited run produces results identical to an unaudited one; it
    /// only acts (set invalidate → refill) when corruption is found.
    pub audit_every: u64,
    /// Armed fault injector, `None` in normal operation. Feeds the
    /// runner's cache key via `Debug`, so injected runs never collide
    /// with clean ones.
    pub inject: Option<FaultPlan>,
}

impl SimConfig {
    /// The paper's full-scale configuration (1 GB L4, Table 2) with the
    /// given cache organization.
    #[must_use]
    pub fn paper(organization: Organization) -> Self {
        Self::scaled(organization, 1)
    }

    /// A 1/`scale` system: L4 and L3 capacities and workload footprints all
    /// divided by `scale`, keeping every ratio of the paper's configuration
    /// (`scale` must be a power of two).
    #[must_use]
    pub fn scaled(organization: Organization, scale: u64) -> Self {
        let l4_capacity = (1u64 << 30) / scale;
        Self {
            cores: 8,
            l3_bytes: ((8u64 << 20) / scale) as usize,
            l3_ways: 16,
            l3_hit_latency: 30,
            l4: DramCacheConfig::with_capacity(organization, l4_capacity),
            l4_dram: DramConfig::stacked_l4(),
            mem_dram: DramConfig::ddr_main(),
            l3_fetch: L3FetchPolicy::Demand,
            install_pair_in_l3: true,
            mlp: 16,
            base_cpi: 0.25,
            scale,
            warmup_records: 60_000,
            measure_records: 150_000,
            obs: ObsConfig::default(),
            audit_every: 0,
            inject: None,
        }
    }

    /// Doubles the L4 capacity (idealized "2x Capacity" comparison and
    /// Table 8 sensitivity).
    #[must_use]
    pub fn with_double_l4_capacity(mut self) -> Self {
        self.l4.capacity_bytes *= 2;
        self
    }

    /// Doubles the stacked-DRAM channel count ("2x BW").
    #[must_use]
    pub fn with_double_l4_bandwidth(mut self) -> Self {
        self.l4_dram = self.l4_dram.with_double_channels();
        self
    }

    /// Halves the stacked-DRAM latency (Table 8's "50% latency").
    #[must_use]
    pub fn with_half_l4_latency(mut self) -> Self {
        self.l4_dram = self.l4_dram.with_half_latency();
        self
    }

    /// Shorter warm-up/measure windows for unit tests.
    #[must_use]
    pub fn with_records(mut self, warmup: u64, measure: u64) -> Self {
        self.warmup_records = warmup;
        self.measure_records = measure;
        self
    }

    /// Replaces the observability configuration.
    #[must_use]
    pub fn with_obs(mut self, obs: ObsConfig) -> Self {
        self.obs = obs;
        self
    }

    /// Enables the invariant auditor every `every` demand records.
    #[must_use]
    pub fn with_audit(mut self, every: u64) -> Self {
        self.audit_every = every;
        self
    }

    /// Arms a fault injector.
    #[must_use]
    pub fn with_inject(mut self, plan: FaultPlan) -> Self {
        self.inject = Some(plan);
        self
    }
}

/// What each core runs.
#[derive(Debug, Clone)]
pub struct WorkloadSet {
    /// Per-core workload specs (rate mode repeats one spec). With a
    /// [`trace`](Self::trace) binding attached the specs still supply the
    /// *value model* (compressibility profile) while addresses and timing
    /// come from the recorded trace.
    pub specs: Vec<WorkloadSpec>,
    /// Seed for traces and data values.
    pub seed: u64,
    /// Human-readable name (workload column in the output tables).
    pub name: String,
    /// Recorded-trace binding: when set, per-core record streams come
    /// from the bound `.dtf` file (streamed with bounded memory, or
    /// preloaded) instead of the synthetic generator. The binding's
    /// `Debug` form — including the file's content hash — feeds the
    /// runner's cell fingerprint, so cached results key on the exact
    /// trace bytes.
    pub trace: Option<TraceBinding>,
}

impl WorkloadSet {
    /// Rate mode: all eight cores run copies of `spec` (§3.2).
    #[must_use]
    pub fn rate(spec: WorkloadSpec, seed: u64) -> Self {
        let name = spec.name.to_owned();
        Self {
            specs: vec![spec; 8],
            seed,
            name,
            trace: None,
        }
    }

    /// Mixed mode: one spec per core.
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty.
    #[must_use]
    pub fn mix(name: &str, specs: Vec<WorkloadSpec>, seed: u64) -> Self {
        assert!(!specs.is_empty(), "a workload set needs at least one spec");
        Self {
            specs,
            seed,
            name: name.to_owned(),
            trace: None,
        }
    }

    /// A recorded-trace workload: every core streams its records from
    /// `binding` (mapped `core % binding.cores()`), while `spec` provides
    /// the value/compressibility model and `seed` drives it.
    #[must_use]
    pub fn traced(name: &str, spec: WorkloadSpec, seed: u64, binding: TraceBinding) -> Self {
        Self {
            specs: vec![spec],
            seed,
            name: name.to_owned(),
            trace: Some(binding),
        }
    }

    /// Attaches (or clears) a recorded-trace binding.
    #[must_use]
    pub fn with_trace(mut self, binding: Option<TraceBinding>) -> Self {
        self.trace = binding;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dice_workloads::spec_table;

    #[test]
    fn scaled_divides_capacities() {
        let c = SimConfig::scaled(Organization::UncompressedAlloy, 16);
        assert_eq!(c.l4.capacity_bytes, (1 << 30) / 16);
        assert_eq!(c.l3_bytes, (8 << 20) / 16);
    }

    #[test]
    fn adjusters_compose() {
        let c = SimConfig::scaled(Organization::UncompressedAlloy, 16)
            .with_double_l4_capacity()
            .with_double_l4_bandwidth()
            .with_half_l4_latency();
        assert_eq!(c.l4.capacity_bytes, (1 << 30) / 8);
        assert_eq!(c.l4_dram.channels, 8);
        assert_eq!(c.l4_dram.t_cas, 22);
    }

    #[test]
    fn rate_replicates_spec() {
        let spec = spec_table().into_iter().next().unwrap();
        let wl = WorkloadSet::rate(spec, 1);
        assert_eq!(wl.specs.len(), 8);
        assert_eq!(wl.name, "mcf");
    }
}
