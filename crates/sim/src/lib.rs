//! The system simulator: cores + L3 + DICE DRAM cache + main memory.
//!
//! This crate replaces the paper's USIMM-based infrastructure (§3.1): it
//! glues the substrates together and produces the numbers every figure and
//! table is built from — weighted speedup, L3/L4 hit rates, DRAM-cache and
//! memory traffic, effective capacity, energy and EDP.
//!
//! Structure:
//!
//! * [`CoreModel`] — a trace-driven out-of-order core approximation: a
//!   4-wide front end (0.25 CPI for non-memory work) with up to `mlp`
//!   outstanding L3-level accesses; the core stalls when its miss window
//!   fills, which makes performance sensitive to both memory latency *and*
//!   bandwidth, the property DICE exploits.
//! * [`System`] — the deterministic event loop: per-core trace generators
//!   feed the shared L3; misses run the DRAM-cache controller's probes
//!   against the stacked-DRAM timing model; fills, writebacks and
//!   prefetches are deferred events that consume bandwidth without
//!   blocking cores.
//! * [`RunReport`] — everything measured, plus speedup/energy arithmetic.
//!
//! # Example
//!
//! ```no_run
//! use dice_core::Organization;
//! use dice_sim::{SimConfig, System, WorkloadSet};
//! use dice_workloads::spec_table;
//!
//! let spec = spec_table().into_iter().find(|w| w.name == "gcc").unwrap();
//! let base = SimConfig::scaled(Organization::UncompressedAlloy, 16);
//! let dice = SimConfig::scaled(Organization::Dice { threshold: 36 }, 16);
//! let wl = WorkloadSet::rate(spec, 42);
//! let r_base = System::new(base, &wl).run();
//! let r_dice = System::new(dice, &wl).run();
//! println!("speedup {:.3}", r_dice.weighted_speedup(&r_base));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod core_model;
mod report;
mod system;
mod timeline;
mod wheel;

pub use config::{SimConfig, WorkloadSet};
pub use core_model::CoreModel;
pub use dice_ingest::TraceBinding;
pub use report::{geomean, EnergyReport, IntegrityReport, PhaseCycles, RunDiag, RunReport};
pub use system::{engine_counters, EngineCounters, System};
pub use timeline::IntervalSample;

/// Simulated time in CPU cycles (re-exported from `dice-dram`).
pub type Cycle = dice_dram::Cycle;
