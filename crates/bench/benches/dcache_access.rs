//! Criterion: DRAM-cache controller operation cost (read probe decisions,
//! compressed-set inserts with real compressed sizes).

use criterion::{criterion_group, criterion_main, Criterion};
use dice_core::{DramCacheConfig, DramCacheController, Organization};
use dice_workloads::{spec_table, DataModel, SplitMix64};

fn controller(org: Organization) -> DramCacheController {
    DramCacheController::new(DramCacheConfig::with_capacity(org, 1 << 22))
}

fn oracle() -> DataModel {
    let spec = spec_table()
        .into_iter()
        .find(|w| w.name == "soplex")
        .unwrap();
    DataModel::new(&spec, 7)
}

fn bench_reads(c: &mut Criterion) {
    for (name, org) in [
        ("alloy", Organization::UncompressedAlloy),
        ("dice", Organization::Dice { threshold: 36 }),
        ("scc", Organization::Scc),
    ] {
        let mut l4 = controller(org);
        let mut data = oracle();
        let mut rng = SplitMix64::new(3);
        for i in 0..100_000u64 {
            l4.fill(i * 3, false, None, &mut data);
        }
        c.bench_function(format!("dcache/read/{name}"), |b| {
            b.iter(|| std::hint::black_box(l4.read(rng.below(300_000)).hit))
        });
    }
}

fn bench_fills(c: &mut Criterion) {
    let mut l4 = controller(Organization::Dice { threshold: 36 });
    let mut data = oracle();
    let mut rng = SplitMix64::new(4);
    c.bench_function("dcache/fill/dice", |b| {
        b.iter(|| {
            let line = rng.below(1_000_000);
            std::hint::black_box(l4.fill(line, false, None, &mut data).probes.len())
        })
    });
}

fn bench_writebacks(c: &mut Criterion) {
    let mut l4 = controller(Organization::Dice { threshold: 36 });
    let mut data = oracle();
    let mut rng = SplitMix64::new(5);
    for i in 0..100_000u64 {
        l4.fill(i, false, None, &mut data);
    }
    c.bench_function("dcache/writeback/dice", |b| {
        b.iter(|| {
            let line = rng.below(100_000);
            std::hint::black_box(l4.writeback(line, &mut data).probes.len())
        })
    });
}

criterion_group!(benches, bench_reads, bench_fills, bench_writebacks);
criterion_main!(benches);
