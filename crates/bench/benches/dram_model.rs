//! Criterion: DRAM timing-model scheduling cost (accesses per second the
//! simulator can sustain).

use criterion::{criterion_group, criterion_main, Criterion};
use dice_dram::{AccessKind, DramConfig, DramDevice, Location};

fn bench_row_hits(c: &mut Criterion) {
    let mut dev = DramDevice::new(DramConfig::stacked_l4());
    let mut now = 0;
    c.bench_function("dram/row_hit_access", |b| {
        b.iter(|| {
            let r = dev.access(
                now,
                AccessKind::Read,
                Location {
                    channel: 0,
                    bank: 0,
                    row: 1,
                },
                80,
            );
            now = r.done;
            std::hint::black_box(r.done)
        })
    });
}

fn bench_row_conflicts(c: &mut Criterion) {
    let mut dev = DramDevice::new(DramConfig::stacked_l4());
    let mut now = 0;
    let mut row = 0u64;
    c.bench_function("dram/row_conflict_access", |b| {
        b.iter(|| {
            row = row.wrapping_add(1);
            let r = dev.access(
                now,
                AccessKind::Read,
                Location {
                    channel: 0,
                    bank: 0,
                    row,
                },
                80,
            );
            now = r.done;
            std::hint::black_box(r.done)
        })
    });
}

fn bench_spread_traffic(c: &mut Criterion) {
    let mut dev = DramDevice::new(DramConfig::stacked_l4());
    let cfg = dev.config().clone();
    let mut now = 0;
    let mut n = 0u64;
    c.bench_function("dram/interleaved_traffic", |b| {
        b.iter(|| {
            n = n.wrapping_add(0x9e37_79b9);
            let loc = Location::interleave(&cfg, n % 100_000);
            let r = dev.access(now, AccessKind::Read, loc, 80);
            now = now.max(r.start);
            std::hint::black_box(r.done)
        })
    });
}

criterion_group!(
    benches,
    bench_row_hits,
    bench_row_conflicts,
    bench_spread_traffic
);
criterion_main!(benches);
