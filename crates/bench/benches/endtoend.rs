//! Criterion: end-to-end simulator throughput (one small measured window
//! per iteration) for the baseline and DICE organizations.

use criterion::{criterion_group, criterion_main, Criterion};
use dice_core::Organization;
use dice_sim::{SimConfig, System, WorkloadSet};
use dice_workloads::spec_table;

fn run_once(org: Organization, wl_name: &str) -> u64 {
    let spec = spec_table()
        .into_iter()
        .find(|w| w.name == wl_name)
        .unwrap();
    let cfg = SimConfig::scaled(org, 1024).with_records(1_000, 2_000);
    let r = System::new(cfg, &WorkloadSet::rate(spec, 7)).run();
    r.cycles
}

fn bench_endtoend(c: &mut Criterion) {
    let mut g = c.benchmark_group("endtoend");
    g.sample_size(10);
    g.bench_function("baseline/gcc", |b| {
        b.iter(|| std::hint::black_box(run_once(Organization::UncompressedAlloy, "gcc")))
    });
    g.bench_function("dice/gcc", |b| {
        b.iter(|| std::hint::black_box(run_once(Organization::Dice { threshold: 36 }, "gcc")))
    });
    g.bench_function("dice/cc_twi", |b| {
        b.iter(|| std::hint::black_box(run_once(Organization::Dice { threshold: 36 }, "cc_twi")))
    });
    g.finish();
}

criterion_group!(benches, bench_endtoend);
criterion_main!(benches);
