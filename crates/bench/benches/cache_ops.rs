//! Criterion: SRAM cache model operation cost.

use criterion::{criterion_group, criterion_main, Criterion};
use dice_cache::{HierarchyConfig, SetAssocCache, SramHierarchy};
use dice_workloads::SplitMix64;

fn bench_set_assoc(c: &mut Criterion) {
    let mut cache = SetAssocCache::new(1 << 20, 16);
    let mut rng = SplitMix64::new(1);
    // Pre-fill.
    for i in 0..20_000 {
        cache.install(i, false);
    }
    c.bench_function("cache/access_hit", |b| {
        b.iter(|| std::hint::black_box(cache.access(rng.below(20_000), false)))
    });
    c.bench_function("cache/install_evict", |b| {
        b.iter(|| std::hint::black_box(cache.install(rng.next_u64() % 1_000_000, false)))
    });
}

fn bench_hierarchy(c: &mut Criterion) {
    let mut h = SramHierarchy::new(&HierarchyConfig::paper_8core_scaled(16));
    let mut rng = SplitMix64::new(2);
    c.bench_function("cache/hierarchy_access_fill", |b| {
        b.iter(|| {
            let addr = rng.below(100_000);
            if h.access(0, addr, false).is_none() {
                h.fill(0, addr, false);
            }
            std::hint::black_box(h.take_writebacks().len())
        })
    });
}

criterion_group!(benches, bench_set_assoc, bench_hierarchy);
criterion_main!(benches);
