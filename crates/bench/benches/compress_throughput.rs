//! Criterion: compression/decompression throughput of FPC, BDI and the
//! hybrid codec on representative line contents.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dice_compress::{bdi::BdiLine, compress, cpack::CpackLine, decompress, fpc::FpcLine, LineData};
use dice_workloads::{line_data, PageClass, SplitMix64};

fn sample_lines() -> Vec<(&'static str, LineData)> {
    let classes = [
        ("zero", PageClass::Zero),
        ("small_int", PageClass::SmallInt),
        ("strided", PageClass::Strided),
        ("pointer", PageClass::Pointer),
        ("float", PageClass::Float),
        ("random", PageClass::Random),
    ];
    classes
        .into_iter()
        .map(|(name, class)| (name, line_data(7, class, 12_345)))
        .collect()
}

fn bench_compress(c: &mut Criterion) {
    let lines = sample_lines();
    let mut g = c.benchmark_group("compress");
    for (name, line) in &lines {
        g.bench_function(format!("fpc/{name}"), |b| {
            b.iter(|| std::hint::black_box(FpcLine::compress(line).size()))
        });
        g.bench_function(format!("bdi/{name}"), |b| {
            b.iter(|| std::hint::black_box(BdiLine::compress(line).map(|l| l.size())))
        });
        g.bench_function(format!("cpack/{name}"), |b| {
            b.iter(|| std::hint::black_box(CpackLine::compress(line).size()))
        });
        g.bench_function(format!("hybrid/{name}"), |b| {
            b.iter(|| std::hint::black_box(compress(line).size()))
        });
    }
    g.finish();
}

fn bench_decompress(c: &mut Criterion) {
    let lines = sample_lines();
    let mut g = c.benchmark_group("decompress");
    for (name, line) in &lines {
        let compressed = compress(line);
        g.bench_function(format!("hybrid/{name}"), |b| {
            b.iter(|| std::hint::black_box(decompress(&compressed)))
        });
    }
    g.finish();
}

fn bench_stream(c: &mut Criterion) {
    // Sustained compression over a random mix of classes, the shape the
    // simulator's size oracle sees.
    let mut rng = SplitMix64::new(7);
    c.bench_function("compress/stream_mixed", |b| {
        b.iter_batched(
            || {
                let class = PageClass::ALL[(rng.next_u64() % 8) as usize];
                line_data(7, class, rng.next_u64() >> 32)
            },
            |line| std::hint::black_box(compress(&line).size()),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_compress, bench_decompress, bench_stream);
criterion_main!(benches);
