//! Ablation "bench" (custom harness): quantifies each design choice
//! DESIGN.md §5 calls out by running small paired simulations and printing
//! the deltas. Run with `cargo bench -p dice-bench --bench ablation`.
//!
//! Unlike the Criterion targets, the interesting output here is simulated
//! speedup, not wall-clock time, so this uses a plain `main`.

use dice_core::{DramCacheConfig, Organization, TagVariant};
use dice_sim::{RunReport, SimConfig, System, WorkloadSet};
use dice_workloads::spec_table;

const SCALE: u64 = 256;
const WARMUP: u64 = 8_000;
const MEASURE: u64 = 20_000;

fn run(cfg: SimConfig, wl: &WorkloadSet) -> RunReport {
    System::new(cfg, wl).run()
}

fn cfg(org: Organization) -> SimConfig {
    SimConfig::scaled(org, SCALE).with_records(WARMUP, MEASURE)
}

fn wl(name: &str, seed: u64) -> WorkloadSet {
    let spec = spec_table().into_iter().find(|w| w.name == name).unwrap();
    WorkloadSet::rate(spec, seed)
}

fn gmean(v: &[f64]) -> f64 {
    (v.iter().map(|x| x.max(1e-12).ln()).sum::<f64>() / v.len() as f64).exp()
}

/// Workload subset spanning the compressibility spectrum.
const SUBSET: [&str; 6] = ["mcf", "lbm", "soplex", "gcc", "libq", "cc_twi"];

fn ablate(label: &str, make: impl Fn() -> SimConfig) {
    let mut speedups = Vec::new();
    for name in SUBSET {
        let w = wl(name, 0xd1ce);
        let base = run(cfg(Organization::UncompressedAlloy), &w);
        let test = run(make(), &w);
        speedups.push(test.weighted_speedup(&base));
    }
    println!(
        "{label:<34} gmean speedup {:+.1}%",
        (gmean(&speedups) - 1.0) * 100.0
    );
}

fn main() {
    // `cargo bench` passes --bench; ignore arguments.
    println!("Ablation study (subset: {SUBSET:?}, scale 1/{SCALE})");
    println!("----------------------------------------------------------------");

    // 1. Insertion threshold (Table 4's knob, with degenerate endpoints).
    for thr in [0u32, 32, 36, 40, 64] {
        ablate(&format!("dice threshold {thr:>2}B"), move || {
            cfg(Organization::Dice { threshold: thr })
        });
    }

    // 2. Neighbor tag (Alloy) vs KNL-style both-location miss checks.
    ablate("dice alloy neighbor-tag", || {
        cfg(Organization::Dice { threshold: 36 })
    });
    ablate("dice knl no-neighbor-tag", || {
        let mut c = cfg(Organization::Dice { threshold: 36 });
        c.l4 = DramCacheConfig {
            tag_variant: TagVariant::Knl,
            ..c.l4
        };
        c
    });

    // 3. CIP LTT size.
    for entries in [64usize, 512, 2048, 8192] {
        ablate(&format!("dice ltt {entries:>4} entries"), move || {
            let mut c = cfg(Organization::Dice { threshold: 36 });
            c.l4.ltt_entries = entries;
            c
        });
    }

    // 4. Free-pair-line installation into L3 (§6.4) on/off.
    ablate("dice with L3 pair install", || {
        cfg(Organization::Dice { threshold: 36 })
    });
    ablate("dice without L3 pair install", || {
        let mut c = cfg(Organization::Dice { threshold: 36 });
        c.install_pair_in_l3 = false;
        c
    });

    // 5. Static index schemes for reference (NSI is §4.5's strawman).
    ablate("static tsi", || cfg(Organization::CompressedTsi));
    ablate("static nsi", || cfg(Organization::CompressedNsi));
    ablate("static bai", || cfg(Organization::CompressedBai));
}
