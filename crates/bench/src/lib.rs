//! Experiment harness for regenerating every table and figure of the DICE
//! paper (see DESIGN.md §4 for the experiment index).
//!
//! The heavy lifting lives in `dice-sim`; this crate adds:
//!
//! * [`Ctx`] — experiment context: the scale/window settings shared by all
//!   experiments and a memo cache so e.g. the uncompressed-baseline run of
//!   each workload is simulated once and reused by every figure;
//! * [`workloads`] — the paper's workload lists (RATE / MIX / GAP /
//!   ALL26 / non-memory-intensive) in Table 3 order;
//! * [`catalog`] — the experiment id/description table shared by
//!   `experiments --list` and `dice-serve`'s `/v1/experiments`;
//! * [`table`] — plain-text table rendering for harness output.
//!
//! Run the harness with `cargo run --release -p dice-bench --bin
//! experiments -- <id>` where `<id>` is `fig4`, `fig7`, `fig10`, …,
//! `tab8`, `cip`, or `all`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod ctx;
pub mod table;
pub mod workloads;

pub use catalog::{catalog_json, ExperimentInfo, EXPERIMENT_CATALOG};
pub use ctx::Ctx;
pub use table::Table;
