//! Minimal aligned-text table rendering for harness output.

use std::fmt::Write as _;

/// A column-aligned text table.
///
/// ```
/// use dice_bench::Table;
/// let mut t = Table::new(&["workload", "speedup"]);
/// t.row(&["gcc".into(), format!("{:.3}", 1.234)]);
/// let s = t.render();
/// assert!(s.contains("gcc"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Appends a separator-style row of dashes.
    pub fn separator(&mut self) {
        self.rows.push(vec!["--".to_owned(); self.headers.len()]);
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    let _ = write!(out, "{:<w$}", c, w = widths[i]);
                } else {
                    let _ = write!(out, "  {:>w$}", c, w = widths[i]);
                }
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            fmt_row(&mut out, r);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1.00".into()]);
        t.row(&["longer-name".into(), "10.00".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(lines[0].starts_with("name"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_wrong_arity() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }
}
