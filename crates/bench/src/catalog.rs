//! The shared experiment catalog: every paper figure/table the
//! `experiments` binary can regenerate, as data.
//!
//! Two consumers render this table and must never drift:
//!
//! * `experiments --list` prints [`catalog_json`] to stdout;
//! * `dice-serve`'s `GET /v1/experiments` serves the same bytes.
//!
//! A unit test in the `experiments` binary asserts that the catalog's ids
//! match its `EXPERIMENTS` dispatch table entry for entry, so adding an
//! experiment without cataloguing it (or vice versa) fails the suite.

use dice_obs::Json;

/// One catalogued experiment: the id accepted on the `experiments`
/// command line and a one-line description of the paper artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentInfo {
    /// Command-line id (`fig10`, `tab6`, …).
    pub id: &'static str,
    /// One-line description of the artifact.
    pub description: &'static str,
}

/// Every experiment, in the `all` sweep's presentation order (the same
/// order as the binary's dispatch table).
pub const EXPERIMENT_CATALOG: &[ExperimentInfo] = &[
    ExperimentInfo {
        id: "fig4",
        description: "Fraction of compressible lines sampled from the access stream",
    },
    ExperimentInfo {
        id: "fig1f",
        description: "Potential speedup of idealized caches (2x capacity / bandwidth / both)",
    },
    ExperimentInfo {
        id: "fig7",
        description: "Compression with static indexing (TSI, BAI) vs idealized caches",
    },
    ExperimentInfo {
        id: "fig10",
        description: "Headline result: TSI vs BAI vs DICE vs 2x-capacity 2x-bandwidth",
    },
    ExperimentInfo {
        id: "fig11",
        description: "Distribution of install indices under DICE",
    },
    ExperimentInfo {
        id: "fig12",
        description: "DICE on a Knights Landing-style DRAM cache (no neighbor tag)",
    },
    ExperimentInfo {
        id: "fig13",
        description: "DICE on non-memory-intensive SPEC workloads",
    },
    ExperimentInfo {
        id: "fig14",
        description: "L4+memory power, performance, energy and EDP, normalized to baseline",
    },
    ExperimentInfo {
        id: "fig15",
        description: "Skewed Compressed Cache mapped onto DRAM vs DICE",
    },
    ExperimentInfo {
        id: "tab4",
        description: "DICE insertion-threshold sensitivity (32/36/40 B)",
    },
    ExperimentInfo {
        id: "tab5",
        description: "Effective DRAM-cache capacity of TSI, BAI and DICE",
    },
    ExperimentInfo {
        id: "tab6",
        description: "L3 hit rate, baseline vs DICE (free adjacent-line installs)",
    },
    ExperimentInfo {
        id: "tab7",
        description: "Wide-fetch / next-line prefetch baselines vs DICE",
    },
    ExperimentInfo {
        id: "tab8",
        description: "DICE speedup on bigger, wider and faster caches",
    },
    ExperimentInfo {
        id: "cip",
        description: "CIP accuracy vs Last-Time-Table size (Section 5.3)",
    },
    ExperimentInfo {
        id: "ingest",
        description: "Trace ingestion: DICE on a packed .dtf trace, streamed vs preloaded",
    },
];

/// The catalog as JSON: `{"experiments": [{"id", "description"}, …]}`.
///
/// Both `experiments --list` and `dice-serve`'s `/v1/experiments` emit
/// exactly `catalog_json().render()`, so the two can never drift.
#[must_use]
pub fn catalog_json() -> Json {
    Json::Obj(vec![(
        "experiments".into(),
        Json::Arr(
            EXPERIMENT_CATALOG
                .iter()
                .map(|e| {
                    Json::Obj(vec![
                        ("id".into(), Json::str(e.id)),
                        ("description".into(), Json::str(e.description)),
                    ])
                })
                .collect(),
        ),
    )])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique() {
        let mut ids: Vec<_> = EXPERIMENT_CATALOG.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        let n = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), n, "duplicate experiment id in the catalog");
    }

    #[test]
    fn json_lists_every_entry() {
        let j = catalog_json();
        let arr = j.get("experiments").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), EXPERIMENT_CATALOG.len());
        for (item, info) in arr.iter().zip(EXPERIMENT_CATALOG) {
            assert_eq!(item.get("id").unwrap().as_str(), Some(info.id));
            assert_eq!(
                item.get("description").unwrap().as_str(),
                Some(info.description)
            );
        }
    }
}
