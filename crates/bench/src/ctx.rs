//! Experiment context: shared scale settings and a run memo.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use dice_core::{FaultPlan, Organization};
use dice_obs::ObsConfig;
use dice_runner::{Cell, CellOutcome, SweepResult};
use dice_sim::{RunReport, SimConfig, System, WorkloadSet};

/// Shared settings for one harness invocation plus a cache of completed
/// runs keyed by `(config tag, workload name)`, so experiments that share
/// configurations (every figure needs the uncompressed baseline) pay for
/// each simulation once.
///
/// The memo is `Send + Sync`: the parallel runner simulates a sweep's
/// cells on worker threads, [`absorb`](Ctx::absorb) folds the results in,
/// and the figure renderers then hit the memo instead of simulating.
/// [`run_cfg`](Ctx::run_cfg) still simulates on a miss, so partial sweeps
/// (or none at all) stay correct — just serial.
pub struct Ctx {
    /// Footprint/capacity scale divisor (DESIGN.md §3; 64 by default for
    /// the harness, 16 for higher-fidelity runs, 1 = the paper's 1 GB).
    pub scale: u64,
    /// Warm-up records per core.
    pub warmup: u64,
    /// Measured records per core.
    pub measure: u64,
    /// Workload seed.
    pub seed: u64,
    /// Print progress lines to stderr as runs complete.
    pub verbose: bool,
    /// Observability knobs applied to every run built through [`cfg`].
    ///
    /// [`cfg`]: Ctx::cfg
    pub obs: ObsConfig,
    /// Invariant-audit period (demand records) applied to every run built
    /// through [`cfg`](Ctx::cfg); 0 disables auditing.
    pub audit_every: u64,
    /// Fault injector armed on every run built through
    /// [`cfg`](Ctx::cfg); `None` in normal operation.
    pub inject: Option<FaultPlan>,
    cache: Mutex<HashMap<(String, String), Arc<RunReport>>>,
    /// Cells the runner reported as failed; [`run_cfg`](Ctx::run_cfg)
    /// re-panics with the recorded message instead of re-simulating a
    /// known-diverging configuration.
    failed: Mutex<HashMap<(String, String), String>>,
}

impl Ctx {
    /// The harness default: a 1/256-scale system (4 MB L4) with windows
    /// long enough to warm the cache (~10 fills per set on GAP), sized so
    /// the full `all` sweep completes in ~20 minutes on one core.
    #[must_use]
    pub fn standard() -> Self {
        Self {
            scale: 256,
            warmup: 60_000,
            measure: 100_000,
            seed: 0xd1ce,
            verbose: true,
            obs: ObsConfig::default(),
            audit_every: 0,
            inject: None,
            cache: Mutex::new(HashMap::new()),
            failed: Mutex::new(HashMap::new()),
        }
    }

    /// A tiny context for unit tests.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            scale: 512,
            warmup: 2_000,
            measure: 5_000,
            seed: 0xd1ce,
            verbose: false,
            obs: ObsConfig::default(),
            audit_every: 0,
            inject: None,
            cache: Mutex::new(HashMap::new()),
            failed: Mutex::new(HashMap::new()),
        }
    }

    /// Baseline [`SimConfig`] for `org` at this context's scale/windows.
    #[must_use]
    pub fn cfg(&self, org: Organization) -> SimConfig {
        let mut cfg = SimConfig::scaled(org, self.scale)
            .with_records(self.warmup, self.measure)
            .with_obs(self.obs)
            .with_audit(self.audit_every);
        cfg.inject = self.inject;
        cfg
    }

    /// A runner [`Cell`] for `cfg` on `wl` under `tag` (the declarative
    /// counterpart of [`run_cfg`](Ctx::run_cfg)).
    #[must_use]
    pub fn cell(&self, tag: &str, cfg: SimConfig, wl: &WorkloadSet) -> Cell {
        Cell::new(tag, cfg, wl.clone())
    }

    /// Folds a runner sweep into the memo: completed cells become memo
    /// hits, failed cells are recorded so later lookups fail fast with the
    /// original panic message.
    pub fn absorb(&self, sweep: &SweepResult) {
        let mut cache = self.cache.lock().expect("ctx memo mutex poisoned");
        let mut failed = self.failed.lock().expect("ctx memo mutex poisoned");
        for (key, outcome) in &sweep.outcomes {
            match outcome {
                CellOutcome::Completed { report, .. } => {
                    cache.insert(key.clone(), Arc::clone(report));
                }
                CellOutcome::Failed { error } => {
                    failed.insert(key.clone(), error.clone());
                }
                CellOutcome::TimedOut { budget } => {
                    failed.insert(
                        key.clone(),
                        format!("timed out after {:.1}s", budget.as_secs_f64()),
                    );
                }
            }
        }
    }

    /// Runs (or recalls) `cfg` on `wl`. `tag` must uniquely identify the
    /// configuration — it is the memo key together with the workload name.
    ///
    /// # Panics
    ///
    /// Panics (with the recorded message) if the parallel runner already
    /// reported this cell as failed.
    pub fn run_cfg(&self, tag: &str, cfg: SimConfig, wl: &WorkloadSet) -> Arc<RunReport> {
        let key = (tag.to_owned(), wl.name.clone());
        if let Some(r) = self
            .cache
            .lock()
            .expect("ctx memo mutex poisoned")
            .get(&key)
        {
            return Arc::clone(r);
        }
        if let Some(error) = self
            .failed
            .lock()
            .expect("ctx memo mutex poisoned")
            .get(&key)
        {
            panic!("cell {tag}/{} failed in the runner: {error}", wl.name);
        }
        if self.verbose {
            eprintln!("  [run] {:<12} {}", tag, wl.name);
        }
        let report = Arc::new(System::new(cfg, wl).run());
        self.cache
            .lock()
            .expect("ctx memo mutex poisoned")
            .insert(key, Arc::clone(&report));
        report
    }

    /// Runs (or recalls) the plain organization `org` on `wl`.
    pub fn run_org(&self, tag: &str, org: Organization, wl: &WorkloadSet) -> Arc<RunReport> {
        self.run_cfg(tag, self.cfg(org), wl)
    }

    /// The uncompressed Alloy baseline for `wl`.
    pub fn baseline(&self, wl: &WorkloadSet) -> Arc<RunReport> {
        self.run_org("base", Organization::UncompressedAlloy, wl)
    }

    /// DICE with the paper's default 36 B threshold.
    pub fn dice(&self, wl: &WorkloadSet) -> Arc<RunReport> {
        self.run_org("dice36", Organization::Dice { threshold: 36 }, wl)
    }

    /// Number of memoized runs (introspection for tests).
    #[must_use]
    pub fn cached_runs(&self) -> usize {
        self.cache.lock().expect("ctx memo mutex poisoned").len()
    }

    /// Every memoized run as `(tag, workload, report)`, sorted by key for
    /// deterministic export.
    #[must_use]
    pub fn reports(&self) -> Vec<(String, String, Arc<RunReport>)> {
        let cache = self.cache.lock().expect("ctx memo mutex poisoned");
        let mut out: Vec<_> = cache
            .iter()
            .map(|((tag, wl), r)| (tag.clone(), wl.clone(), Arc::clone(r)))
            .collect();
        out.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dice_runner::{Runner, RunnerConfig};
    use dice_workloads::spec_table;

    // The whole point of the refactor: a context can be shared across the
    // runner's worker threads.
    const _: fn() = || {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Ctx>();
    };

    fn gcc_set() -> WorkloadSet {
        let spec = spec_table().into_iter().find(|w| w.name == "gcc").unwrap();
        WorkloadSet::rate(spec, 1)
    }

    #[test]
    fn memoizes_runs() {
        let ctx = Ctx::quick();
        let wl = gcc_set();
        let a = ctx.baseline(&wl);
        assert_eq!(ctx.cached_runs(), 1);
        let b = ctx.baseline(&wl);
        assert_eq!(ctx.cached_runs(), 1);
        assert_eq!(a.cycles, b.cycles);
    }

    #[test]
    fn distinct_tags_are_distinct_runs() {
        let ctx = Ctx::quick();
        let wl = gcc_set();
        let _ = ctx.baseline(&wl);
        let _ = ctx.dice(&wl);
        assert_eq!(ctx.cached_runs(), 2);
    }

    #[test]
    fn absorbed_sweep_results_become_memo_hits() {
        let ctx = Ctx::quick();
        let wl = gcc_set();
        let cells = vec![ctx.cell("base", ctx.cfg(Organization::UncompressedAlloy), &wl)];
        let sweep = Runner::new(RunnerConfig {
            jobs: 1,
            ..RunnerConfig::default()
        })
        .unwrap()
        .run(cells);
        ctx.absorb(&sweep);
        assert_eq!(ctx.cached_runs(), 1);
        // A memo hit: identical Arc, no second simulation.
        let from_runner = match &sweep.outcomes[&("base".to_owned(), "gcc".to_owned())] {
            CellOutcome::Completed { report, .. } => Arc::clone(report),
            other => panic!("unexpected outcome: {other:?}"),
        };
        assert!(Arc::ptr_eq(&from_runner, &ctx.baseline(&wl)));
    }

    #[test]
    fn absorbed_failures_panic_on_lookup() {
        let ctx = Ctx::quick();
        let bad = WorkloadSet::mix(
            "bad-mix",
            vec![spec_table().into_iter().next().unwrap(); 3],
            1,
        );
        let cells = vec![ctx.cell("base", ctx.cfg(Organization::UncompressedAlloy), &bad)];
        let sweep = Runner::new(RunnerConfig {
            jobs: 1,
            ..RunnerConfig::default()
        })
        .unwrap()
        .run(cells);
        ctx.absorb(&sweep);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ctx.run_cfg("base", ctx.cfg(Organization::UncompressedAlloy), &bad)
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("failed in the runner"), "got {msg:?}");
    }
}
