//! Experiment context: shared scale settings and a run memo.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use dice_core::Organization;
use dice_obs::ObsConfig;
use dice_sim::{RunReport, SimConfig, System, WorkloadSet};

/// Shared settings for one harness invocation plus a cache of completed
/// runs keyed by `(config tag, workload name)`, so experiments that share
/// configurations (every figure needs the uncompressed baseline) pay for
/// each simulation once.
pub struct Ctx {
    /// Footprint/capacity scale divisor (DESIGN.md §3; 64 by default for
    /// the harness, 16 for higher-fidelity runs, 1 = the paper's 1 GB).
    pub scale: u64,
    /// Warm-up records per core.
    pub warmup: u64,
    /// Measured records per core.
    pub measure: u64,
    /// Workload seed.
    pub seed: u64,
    /// Print progress lines to stderr as runs complete.
    pub verbose: bool,
    /// Observability knobs applied to every run built through [`cfg`].
    ///
    /// [`cfg`]: Ctx::cfg
    pub obs: ObsConfig,
    cache: RefCell<HashMap<(String, String), Rc<RunReport>>>,
}

impl Ctx {
    /// The harness default: a 1/256-scale system (4 MB L4) with windows
    /// long enough to warm the cache (~10 fills per set on GAP), sized so
    /// the full `all` sweep completes in ~20 minutes on one core.
    #[must_use]
    pub fn standard() -> Self {
        Self {
            scale: 256,
            warmup: 60_000,
            measure: 100_000,
            seed: 0xd1ce,
            verbose: true,
            obs: ObsConfig::default(),
            cache: RefCell::new(HashMap::new()),
        }
    }

    /// A tiny context for unit tests.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            scale: 512,
            warmup: 2_000,
            measure: 5_000,
            seed: 0xd1ce,
            verbose: false,
            obs: ObsConfig::default(),
            cache: RefCell::new(HashMap::new()),
        }
    }

    /// Baseline [`SimConfig`] for `org` at this context's scale/windows.
    #[must_use]
    pub fn cfg(&self, org: Organization) -> SimConfig {
        SimConfig::scaled(org, self.scale)
            .with_records(self.warmup, self.measure)
            .with_obs(self.obs)
    }

    /// Runs (or recalls) `cfg` on `wl`. `tag` must uniquely identify the
    /// configuration — it is the memo key together with the workload name.
    pub fn run_cfg(&self, tag: &str, cfg: SimConfig, wl: &WorkloadSet) -> Rc<RunReport> {
        let key = (tag.to_owned(), wl.name.clone());
        if let Some(r) = self.cache.borrow().get(&key) {
            return Rc::clone(r);
        }
        if self.verbose {
            eprintln!("  [run] {:<12} {}", tag, wl.name);
        }
        let report = Rc::new(System::new(cfg, wl).run());
        self.cache.borrow_mut().insert(key, Rc::clone(&report));
        report
    }

    /// Runs (or recalls) the plain organization `org` on `wl`.
    pub fn run_org(&self, tag: &str, org: Organization, wl: &WorkloadSet) -> Rc<RunReport> {
        self.run_cfg(tag, self.cfg(org), wl)
    }

    /// The uncompressed Alloy baseline for `wl`.
    pub fn baseline(&self, wl: &WorkloadSet) -> Rc<RunReport> {
        self.run_org("base", Organization::UncompressedAlloy, wl)
    }

    /// DICE with the paper's default 36 B threshold.
    pub fn dice(&self, wl: &WorkloadSet) -> Rc<RunReport> {
        self.run_org("dice36", Organization::Dice { threshold: 36 }, wl)
    }

    /// Number of memoized runs (introspection for tests).
    #[must_use]
    pub fn cached_runs(&self) -> usize {
        self.cache.borrow().len()
    }

    /// Every memoized run as `(tag, workload, report)`, sorted by key for
    /// deterministic export.
    #[must_use]
    pub fn reports(&self) -> Vec<(String, String, Rc<RunReport>)> {
        let cache = self.cache.borrow();
        let mut out: Vec<_> = cache
            .iter()
            .map(|((tag, wl), r)| (tag.clone(), wl.clone(), Rc::clone(r)))
            .collect();
        out.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dice_workloads::spec_table;

    #[test]
    fn memoizes_runs() {
        let ctx = Ctx::quick();
        let spec = spec_table().into_iter().find(|w| w.name == "gcc").unwrap();
        let wl = WorkloadSet::rate(spec, 1);
        let a = ctx.baseline(&wl);
        assert_eq!(ctx.cached_runs(), 1);
        let b = ctx.baseline(&wl);
        assert_eq!(ctx.cached_runs(), 1);
        assert_eq!(a.cycles, b.cycles);
    }

    #[test]
    fn distinct_tags_are_distinct_runs() {
        let ctx = Ctx::quick();
        let spec = spec_table().into_iter().find(|w| w.name == "gcc").unwrap();
        let wl = WorkloadSet::rate(spec, 1);
        let _ = ctx.baseline(&wl);
        let _ = ctx.dice(&wl);
        assert_eq!(ctx.cached_runs(), 2);
    }
}
