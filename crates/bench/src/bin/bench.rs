//! `bench` — the pinned-seed perf-regression micro-suite.
//!
//! Runs a fixed set of hot-path benchmarks (compression size kernels, the
//! page-batched size oracle, the L4 access loop, one end-to-end
//! simulation cell, and streamed `.dtf` trace ingestion), then appends
//! one entry per run to a results file
//! (`BENCH_results.json` by default) recording ops/sec per hot path plus
//! the git revision.
//!
//! Regression tracking: `--against <file>` compares this run to the last
//! committed entry, normalizing by each machine's `calibration_ops`
//! (a fixed pure-ALU loop measured at the same time), and exits non-zero
//! when any hot path is slower by more than `--tolerance` (default 20%).
//! `--baseline-rev REV` pins the comparison to the newest entry recorded
//! at that git revision instead of the newest overall — CI uses this so
//! appending fresh (faster) entries never weakens a gate. `--require
//! NAME:RATIO` (repeatable) demands a calibration-rescaled speedup:
//! the named bench must reach at least RATIO x the baseline or the run
//! fails. `--gate` additionally enforces the size-kernel contract: sizing
//! a line must be at least 2x faster than materializing its compressed
//! payload.
//!
//! Everything is seeded with `0xd1ce`; the workload inputs are identical
//! on every machine and every run.

use std::hint::black_box;
use std::process::Command;
use std::time::{Duration, Instant, SystemTime};

use dice_compress::{compress, compress_pair, compressed_size, pair_compressed_size, LineData};
use dice_core::{DramCacheConfig, DramCacheController, Organization, SizeInfo};
use dice_obs::Json;
use dice_sim::{SimConfig, System, WorkloadSet};
use dice_workloads::{line_data, spec_table, DataModel, PageClass, TraceGen};

const SEED: u64 = 0xd1ce;
/// Minimum measurement window per micro-benchmark.
const WINDOW: Duration = Duration::from_millis(200);

struct Args {
    out: String,
    against: Option<String>,
    baseline_rev: Option<String>,
    tolerance: f64,
    require: Vec<(String, f64)>,
    gate: bool,
    quiet: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        out: "BENCH_results.json".to_owned(),
        against: None,
        baseline_rev: None,
        tolerance: 0.20,
        require: Vec::new(),
        gate: false,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => args.out = it.next().expect("--out needs a path"),
            "--against" => args.against = Some(it.next().expect("--against needs a path")),
            "--baseline-rev" => {
                args.baseline_rev = Some(it.next().expect("--baseline-rev needs a revision"))
            }
            "--tolerance" => {
                args.tolerance = it
                    .next()
                    .expect("--tolerance needs a value")
                    .parse()
                    .expect("tolerance must be a number")
            }
            "--require" => {
                let spec = it.next().expect("--require needs NAME:RATIO");
                let (name, ratio) = spec
                    .split_once(':')
                    .expect("--require format is NAME:RATIO");
                args.require.push((
                    name.to_owned(),
                    ratio.parse().expect("ratio must be a number"),
                ));
            }
            "--gate" => args.gate = true,
            "--quiet" => args.quiet = true,
            "--help" | "-h" => {
                println!(
                    "usage: bench [--out FILE] [--against FILE] [--baseline-rev REV] \
                     [--tolerance F] [--require NAME:RATIO]... [--gate] [--quiet]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Runs `f` (which reports how many operations it performed) repeatedly for
/// at least [`WINDOW`] and returns operations per second.
fn measure<F: FnMut() -> u64>(mut f: F) -> f64 {
    black_box(f()); // warmup: page in code and data
    let start = Instant::now();
    let mut ops = 0u64;
    while start.elapsed() < WINDOW {
        ops += black_box(f());
    }
    ops as f64 / start.elapsed().as_secs_f64()
}

/// Fixed pure-ALU throughput probe: a SplitMix64 scramble loop whose speed
/// tracks the host's single-core integer performance. Baseline entries
/// recorded on a different machine are rescaled by the ratio of
/// calibrations before regression comparison.
fn calibration() -> f64 {
    measure(|| {
        let mut x = SEED;
        let mut acc = 0u64;
        for _ in 0..100_000u64 {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            acc = acc.wrapping_add(z ^ (z >> 31));
        }
        black_box(acc);
        100_000
    })
}

/// A deterministic pool of lines spanning every value class the workload
/// generators synthesize — the same byte patterns the simulator sizes up.
fn line_pool() -> Vec<LineData> {
    let mut pool = Vec::new();
    for class in PageClass::ALL {
        for i in 0..64u64 {
            pool.push(line_data(SEED, class, i));
        }
    }
    pool
}

fn bench_compress_size(pool: &[LineData]) -> f64 {
    measure(|| {
        let mut total = 0usize;
        for line in pool {
            total += compressed_size(line);
        }
        black_box(total);
        pool.len() as u64
    })
}

fn bench_compress_materialize(pool: &[LineData]) -> f64 {
    measure(|| {
        let mut total = 0usize;
        for line in pool {
            total += compress(line).size();
        }
        black_box(total);
        pool.len() as u64
    })
}

fn bench_pair_size(pool: &[LineData]) -> f64 {
    measure(|| {
        let mut total = 0usize;
        for pair in pool.chunks_exact(2) {
            total += pair_compressed_size(&pair[0], &pair[1]);
        }
        black_box(total);
        (pool.len() / 2) as u64
    })
}

fn bench_pair_materialize(pool: &[LineData]) -> f64 {
    measure(|| {
        let mut total = 0usize;
        for pair in pool.chunks_exact(2) {
            total += compress_pair(&pair[0], &pair[1]).total_size();
        }
        black_box(total);
        (pool.len() / 2) as u64
    })
}

/// The page-batched size oracle on a realistic address stream: mostly
/// memo hits (one page-map probe + array index), occasional cold pages.
fn bench_size_oracle() -> f64 {
    let spec = spec_table()
        .into_iter()
        .find(|w| w.name == "mcf")
        .expect("mcf in spec table");
    let mut gen = TraceGen::with_scale(&spec, 0, SEED, 256);
    let addrs: Vec<u64> = (0..50_000).map(|_| gen.next_record().line).collect();
    let mut model = DataModel::new(&spec, SEED);
    measure(|| {
        let mut total = 0u32;
        for &a in &addrs {
            total = total.wrapping_add(model.single_size(a));
            total = total.wrapping_add(model.pair_size(a));
        }
        black_box(total);
        addrs.len() as u64
    })
}

/// Address-derived sizes with zero memo state, isolating controller cost.
struct HashSizes;

impl SizeInfo for HashSizes {
    fn single_size(&mut self, line: u64) -> u32 {
        let h = line.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 40;
        1 + (h % 64) as u32
    }
    fn pair_size(&mut self, even: u64) -> u32 {
        (self.single_size(even & !1) + self.single_size(even | 1)).saturating_sub(4)
    }
}

/// The L4 controller's steady-state access loop: demand reads, fills on
/// miss, periodic dirty writebacks, continuous evictions.
fn bench_l4_access() -> f64 {
    let cfg = DramCacheConfig::with_capacity(Organization::Dice { threshold: 36 }, 1 << 20);
    let mut l4 = DramCacheController::new(cfg);
    let mut sizes = HashSizes;
    let lines = 4 * l4.num_sets();
    // Warm to steady state before measuring.
    for i in 0..lines {
        let line = (i * 7) % lines;
        let r = l4.read(line);
        if !r.hit {
            l4.fill(line, false, r.probes.last().map(|p| p.set), &mut sizes);
        }
    }
    let mut i = 0u64;
    measure(|| {
        const OPS: u64 = 20_000;
        for _ in 0..OPS {
            let line = (i * 7) % lines;
            let r = l4.read(line);
            if !r.hit {
                l4.fill(line, false, r.probes.last().map(|p| p.set), &mut sizes);
            }
            if i.is_multiple_of(5) {
                l4.writeback(line ^ 1, &mut sizes);
            }
            i += 1;
        }
        OPS
    })
}

/// One scaled-down end-to-end simulation cell (cores + L3 + L4 + DRAM
/// timing + synthesized values), reported as trace records per second.
fn bench_end2end_cell() -> f64 {
    let spec = spec_table()
        .into_iter()
        .find(|w| w.name == "mcf")
        .expect("mcf in spec table");
    let warmup = 2_000u64;
    let measure_records = 6_000u64;
    let records = 8 * (warmup + measure_records);
    let run_once = || {
        let cfg = SimConfig::scaled(Organization::Dice { threshold: 36 }, 1024)
            .with_records(warmup, measure_records);
        // The --gate comparison against the committed baseline doubles as
        // the trace-off performance guard, so it must measure trace-off.
        assert_eq!(cfg.obs.trace_level, dice_obs::TraceLevel::Off);
        let report = System::new(cfg, &WorkloadSet::rate(spec.clone(), SEED)).run();
        black_box(report.cycles);
    };
    run_once(); // warmup
    let mut best = f64::MIN;
    for _ in 0..3 {
        let start = Instant::now();
        run_once();
        best = best.max(records as f64 / start.elapsed().as_secs_f64());
    }
    best
}

/// Streamed `.dtf` ingestion: records per second decoded off disk through
/// the bounded-memory reader (frame parse + checksum + LZ decompress +
/// delta decode), measured on a freshly packed generator trace.
fn bench_trace_ingest() -> f64 {
    use dice_ingest::{DtfTraceSource, DtfWriter};
    use dice_workloads::TraceSource;
    let path = std::env::temp_dir().join(format!("dice-bench-ingest-{}.dtf", std::process::id()));
    let spec = spec_table()
        .into_iter()
        .find(|w| w.name == "mcf")
        .expect("mcf in spec table");
    let per_core = 60_000u64;
    let mut w = DtfWriter::create(&path, 2, true).expect("creating bench trace");
    for core in 0..2u32 {
        let mut gen = TraceGen::with_scale(&spec, core, SEED, 256);
        for _ in 0..per_core {
            w.push_record(core, gen.next_record())
                .expect("encoding bench trace");
        }
    }
    w.finish().expect("writing bench trace");
    let src = DtfTraceSource::open(&path).expect("opening bench trace");
    let ops = measure(|| {
        let mut stream = src.open_core(0).expect("opening bench stream");
        let mut acc = 0u64;
        for _ in 0..per_core {
            acc = acc.wrapping_add(stream.next_record().line);
        }
        black_box(acc);
        per_core
    });
    let _ = std::fs::remove_file(&path);
    ops
}

fn git_rev() -> String {
    Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .unwrap_or_else(|| "unknown".to_owned())
}

fn load_entries(path: &str) -> Vec<Json> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    match Json::parse(&text) {
        Ok(Json::Arr(entries)) => entries,
        _ => Vec::new(),
    }
}

fn bench_value(entry: &Json, name: &str) -> Option<f64> {
    entry.get("benches")?.get(name)?.as_f64()
}

fn main() {
    let args = parse_args();

    let say = |msg: &str| {
        if !args.quiet {
            println!("{msg}");
        }
    };

    let cal = calibration();
    say(&format!("calibration        {cal:>14.0} ops/s"));

    let pool = line_pool();
    let mut benches: Vec<(&str, f64)> = Vec::new();
    let compress_size = bench_compress_size(&pool);
    let compress_mat = bench_compress_materialize(&pool);
    benches.push(("compress_size", compress_size));
    benches.push(("compress_materialize", compress_mat));
    benches.push(("pair_size", bench_pair_size(&pool)));
    benches.push(("pair_materialize", bench_pair_materialize(&pool)));
    benches.push(("size_oracle", bench_size_oracle()));
    benches.push(("l4_access", bench_l4_access()));
    benches.push(("end2end_cell", bench_end2end_cell()));
    benches.push(("trace_ingest", bench_trace_ingest()));

    let speedup = compress_size / compress_mat;
    for (name, ops) in &benches {
        say(&format!("{name:<18} {ops:>14.0} ops/s"));
    }
    say(&format!(
        "size-kernel speedup vs materializing: {speedup:.2}x"
    ));

    let unix_time = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let entry = Json::Obj(vec![
        ("git_rev".into(), Json::str(git_rev())),
        ("unix_time".into(), Json::u64(unix_time)),
        ("calibration_ops".into(), Json::num(cal)),
        (
            "benches".into(),
            Json::Obj(
                benches
                    .iter()
                    .map(|&(name, ops)| (name.to_owned(), Json::num(ops)))
                    .collect(),
            ),
        ),
        ("compress_size_speedup".into(), Json::num(speedup)),
    ]);

    let mut failures = Vec::new();

    if let Some(against) = &args.against {
        let baseline = load_entries(against);
        // The results file is shared with dice-serve-loadgen, whose
        // serving-throughput entries carry no "benches" section; compare
        // against the newest entry that actually has micro-bench numbers
        // (of the pinned revision, when --baseline-rev asks for one).
        let found = baseline.iter().rev().find(|e| {
            e.get("benches").is_some()
                && args
                    .baseline_rev
                    .as_deref()
                    .is_none_or(|rev| e.get("git_rev").and_then(Json::as_str) == Some(rev))
        });
        match found {
            None => {
                if args.baseline_rev.is_some() || !args.require.is_empty() {
                    // A pinned or required comparison that cannot run is a
                    // failure — CI must not pass because the baseline is
                    // missing.
                    eprintln!(
                        "error: no baseline entry in {against}{}",
                        args.baseline_rev
                            .as_deref()
                            .map(|r| format!(" for rev {r}"))
                            .unwrap_or_default()
                    );
                    std::process::exit(1);
                }
                eprintln!("warning: no baseline entry in {against}; skipping comparison");
            }
            Some(base) => {
                let base_cal = base
                    .get("calibration_ops")
                    .and_then(Json::as_f64)
                    .unwrap_or(cal);
                // Rescale the baseline to this machine's speed.
                let scale = cal / base_cal;
                say(&format!(
                    "comparing against {} (rev {}, machine scale {scale:.2}x)",
                    against,
                    base.get("git_rev").and_then(Json::as_str).unwrap_or("?"),
                ));
                for (name, now) in &benches {
                    let Some(was) = bench_value(base, name) else {
                        continue;
                    };
                    let expected = was * scale;
                    let ratio = now / expected;
                    say(&format!("  {name:<18} {:.2}x of baseline", ratio));
                    if ratio < 1.0 - args.tolerance {
                        failures.push(format!(
                            "{name}: {now:.0} ops/s vs expected {expected:.0} \
                             ({:.0}% of baseline, tolerance {:.0}%)",
                            ratio * 100.0,
                            (1.0 - args.tolerance) * 100.0
                        ));
                    }
                }
                for (name, min_ratio) in &args.require {
                    let now = benches.iter().find(|(n, _)| n == name).map(|&(_, ops)| ops);
                    let was = bench_value(base, name);
                    match (now, was) {
                        (Some(now), Some(was)) => {
                            let ratio = now / (was * scale);
                            if ratio < *min_ratio {
                                failures.push(format!(
                                    "required speedup not met: {name} is {ratio:.2}x \
                                     the baseline (need >= {min_ratio:.2}x)"
                                ));
                            } else {
                                say(&format!(
                                    "  required {name} >= {min_ratio:.2}x: met ({ratio:.2}x)"
                                ));
                            }
                        }
                        _ => failures.push(format!(
                            "required bench {name} missing from this run or the baseline"
                        )),
                    }
                }
            }
        }
    }

    if args.gate && speedup < 2.0 {
        failures.push(format!(
            "size-kernel gate: compress_size is only {speedup:.2}x \
             the materializing path (need >= 2x)"
        ));
    }

    let mut entries = load_entries(&args.out);
    entries.push(entry);
    let rendered = Json::Arr(entries).render();
    if let Err(e) = std::fs::write(&args.out, rendered + "\n") {
        eprintln!("error: cannot write {}: {e}", args.out);
        std::process::exit(2);
    }
    say(&format!("appended entry to {}", args.out));

    if !failures.is_empty() {
        eprintln!("PERF REGRESSION:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
