//! Trace ingestion tool: packs traces into the `.dtf` container and runs
//! sweeps straight off the packed file.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p dice-bench --bin dice-ingest -- <command> [flags]
//!
//! commands:
//!   gen     generate a synthetic multi-core trace and pack it
//!             --out PATH      output .dtf file (required)
//!             --spec NAME     workload spec driving the generator (mcf)
//!             --cores N       independent streams (8)
//!             --records N     records per stream (100000)
//!             --seed N        generator seed (53709)
//!             --scale N       footprint scale divisor (256)
//!             --no-compress   store frames raw
//!   pack    convert a text trace (`gap line_hex r|w` per line) to .dtf
//!             --in PATH --out PATH [--no-compress]
//!   unpack  write one stream of a .dtf back out as a text trace
//!             --in PATH --out PATH [--core N]
//!   info    validate a .dtf and print its statistics
//!             --in PATH [--strict]
//!   sweep   simulate the organization sweep on a packed trace
//!             --in PATH       the trace to drive every core from
//!             --spec NAME     value/compressibility model (mcf)
//!             --seed N        data-model seed (7)
//!             --scale N       system scale divisor (256)
//!             --warmup N      warm-up records per core (20000)
//!             --measure N     measured records per core (60000)
//!             --jobs N        worker threads (default: all cores)
//!             --replay-in-memory  preload the trace instead of streaming
//!                             (the report is byte-identical either way)
//!             --skew          give even-indexed cells a 6x measure window,
//!                             forcing the scheduler to steal work
//! ```
//!
//! `sweep` prints a deterministic JSON report on stdout (identical for
//! streamed and preloaded replay, and for any `--jobs`), and scheduler
//! statistics — including `steals=` and `tail_idle_ms=` — on stderr.

use std::path::PathBuf;

use dice_core::Organization;
use dice_ingest::{pack_records, scan, DtfWriter, TraceBinding};
use dice_obs::Json;
use dice_runner::{Cell, CellOutcome, Runner, RunnerConfig};
use dice_sim::{RunReport, SimConfig, WorkloadSet};
use dice_workloads::{load_trace, save_trace, spec_table, TraceGen, WorkloadSpec};

/// Flag parser shared by every subcommand; whines and exits on anything
/// a subcommand did not declare.
struct Args {
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(raw: &[String], value_flags: &[&str], bool_flags: &[&str]) -> Self {
        let mut flags = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            let name = raw[i].as_str();
            if value_flags.contains(&name) {
                i += 1;
                let Some(v) = raw.get(i) else {
                    eprintln!("{name} needs a value");
                    std::process::exit(2);
                };
                flags.push((name.to_owned(), Some(v.clone())));
            } else if bool_flags.contains(&name) {
                flags.push((name.to_owned(), None));
            } else {
                eprintln!("unexpected argument {name:?}");
                std::process::exit(2);
            }
            i += 1;
        }
        Self { flags }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn num(&self, name: &str, default: u64) -> u64 {
        self.get(name).map_or(default, |v| {
            v.parse().unwrap_or_else(|e| {
                eprintln!("{name} {v:?}: {e}");
                std::process::exit(2);
            })
        })
    }

    fn path(&self, name: &str) -> PathBuf {
        let Some(v) = self.get(name) else {
            eprintln!("{name} PATH is required");
            std::process::exit(2);
        };
        PathBuf::from(v)
    }
}

fn spec_named(name: &str) -> WorkloadSpec {
    spec_table()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| {
            eprintln!("unknown workload spec {name:?}");
            std::process::exit(2);
        })
}

fn fail(context: &str, e: &dyn std::fmt::Display) -> ! {
    eprintln!("[dice-ingest] {context}: {e}");
    std::process::exit(1);
}

/// `gen`: pack synthetic per-core generator streams.
fn cmd_gen(args: &Args) {
    let out = args.path("--out");
    let spec = spec_named(args.get("--spec").unwrap_or("mcf"));
    let cores = args.num("--cores", 8) as u32;
    let records = args.num("--records", 100_000);
    let seed = args.num("--seed", 0xd1cd);
    let scale = args.num("--scale", 256);
    let compress = !args.has("--no-compress");
    let mut w = DtfWriter::create(&out, cores, compress)
        .unwrap_or_else(|e| fail(&format!("creating {}", out.display()), &e));
    for core in 0..cores {
        let mut gen = TraceGen::with_scale(&spec, core, seed, scale);
        for _ in 0..records {
            w.push_record(core, gen.next_record())
                .unwrap_or_else(|e| fail("encoding records", &e));
        }
    }
    let stats = w
        .finish()
        .unwrap_or_else(|e| fail(&format!("writing {}", out.display()), &e));
    eprintln!(
        "[dice-ingest] gen: {} records ({} streams of {records}) in {} frames, {} bytes -> {}",
        stats.records,
        cores,
        stats.frames,
        stats.bytes,
        out.display()
    );
}

/// `pack`: text trace to a single-stream `.dtf`.
fn cmd_pack(args: &Args) {
    let input = args.path("--in");
    let out = args.path("--out");
    let compress = !args.has("--no-compress");
    let records =
        load_trace(&input).unwrap_or_else(|e| fail(&format!("reading {}", input.display()), &e));
    if records.is_empty() {
        fail(
            &format!("reading {}", input.display()),
            &"the trace holds no records",
        );
    }
    let stats = pack_records(&out, &records, compress)
        .unwrap_or_else(|e| fail(&format!("packing {}", out.display()), &e));
    eprintln!(
        "[dice-ingest] pack: {} records in {} frames, {} bytes -> {}",
        stats.records,
        stats.frames,
        stats.bytes,
        out.display()
    );
}

/// `unpack`: one `.dtf` stream back to the text format.
fn cmd_unpack(args: &Args) {
    let input = args.path("--in");
    let out = args.path("--out");
    let core = args.num("--core", 0) as u32;
    let records = dice_ingest::read_core_records(&input, core)
        .unwrap_or_else(|e| fail(&format!("reading {}", input.display()), &e));
    let plain: Vec<_> = records.iter().map(|r| r.rec).collect();
    save_trace(&out, &plain).unwrap_or_else(|e| fail(&format!("writing {}", out.display()), &e));
    eprintln!(
        "[dice-ingest] unpack: {} records of stream {core} -> {}",
        plain.len(),
        out.display()
    );
}

/// `info`: scan and report container statistics.
fn cmd_info(args: &Args) {
    let input = args.path("--in");
    let info = scan(&input, args.has("--strict"))
        .unwrap_or_else(|e| fail(&format!("scanning {}", input.display()), &e));
    let hash = dice_ingest::file_content_hash(&input)
        .unwrap_or_else(|e| fail(&format!("hashing {}", input.display()), &e));
    println!("file:          {}", input.display());
    println!("content hash:  {hash:016x}");
    println!("streams:       {}", info.cores);
    println!("records:       {}", info.records);
    println!(
        "frames:        {} ({} compressed)",
        info.frames, info.compressed_frames
    );
    println!(
        "bytes:         {} ({} raw payload, {:.2}x packed)",
        info.file_bytes,
        info.raw_payload_bytes,
        info.raw_payload_bytes as f64 / info.file_bytes.max(1) as f64
    );
    println!("torn tail:     {} bytes dropped", info.dropped_bytes);
    for (i, c) in info.per_core.iter().enumerate() {
        println!(
            "  stream {i}: {} records, {} footprint lines",
            c.records,
            c.footprint_lines()
        );
    }
}

/// The organization columns of the `sweep` command, in output order.
/// `base` must come first: every speedup is computed against it.
const SWEEP_ORGS: [(&str, Organization); 6] = [
    ("base", Organization::UncompressedAlloy),
    ("tsi", Organization::CompressedTsi),
    ("bai", Organization::CompressedBai),
    ("dice32", Organization::Dice { threshold: 32 }),
    ("dice36", Organization::Dice { threshold: 36 }),
    ("dice40", Organization::Dice { threshold: 40 }),
];

/// `sweep`: the organization comparison driven by a packed trace.
fn cmd_sweep(args: &Args) {
    let input = args.path("--in");
    let spec = spec_named(args.get("--spec").unwrap_or("mcf"));
    let seed = args.num("--seed", 7);
    let scale = args.num("--scale", 256);
    let warmup = args.num("--warmup", 20_000);
    let measure = args.num("--measure", 60_000);
    let preload = args.has("--replay-in-memory");
    let skew = args.has("--skew");
    let jobs = args.num(
        "--jobs",
        std::thread::available_parallelism().map_or(1, |n| n.get() as u64),
    ) as usize;

    let binding = TraceBinding::open(&input)
        .unwrap_or_else(|e| fail(&format!("opening {}", input.display()), &e))
        .with_preload(preload);
    let wl_name = format!("trace-{}", spec.name);
    let wl = WorkloadSet::traced(&wl_name, spec, seed, binding.clone());

    let mut cells = Vec::new();
    for (i, (tag, org)) in SWEEP_ORGS.into_iter().enumerate() {
        // The skew is keyed on the cell index, not the job count, so the
        // report stays identical for any --jobs; only the schedule moves.
        let m = if skew && i % 2 == 0 {
            measure * 6
        } else {
            measure
        };
        let cfg = SimConfig::scaled(org, scale).with_records(warmup, m);
        cells.push(Cell::new(tag, cfg, wl.clone()));
    }

    let runner = Runner::new(RunnerConfig {
        jobs,
        verbose: false,
        ..RunnerConfig::default()
    })
    .unwrap_or_else(|e| fail("building runner", &e));
    let sweep = runner.run(cells);
    eprintln!(
        "[dice-ingest] sweep: {} steals={} tail_idle_ms={} mode={}",
        sweep.summary(),
        sweep.steals,
        sweep.tail_idle_ms,
        if preload { "preload" } else { "streamed" },
    );

    let report_of = |tag: &str| -> &RunReport {
        match sweep.outcomes.get(&(tag.to_owned(), wl_name.clone())) {
            Some(CellOutcome::Completed { report, .. }) => report,
            Some(CellOutcome::Failed { error }) => fail(&format!("cell {tag}/{wl_name}"), &error),
            other => fail(&format!("cell {tag}/{wl_name}"), &format!("{other:?}")),
        }
    };
    let base = report_of("base");
    let runs = SWEEP_ORGS
        .into_iter()
        .map(|(tag, _)| {
            let r = report_of(tag);
            Json::Obj(vec![
                ("tag".into(), Json::str(tag)),
                ("workload".into(), Json::str(&wl_name)),
                (
                    "speedup".into(),
                    Json::str(format!("{:.4}", r.weighted_speedup(base))),
                ),
                (
                    "l3_hit".into(),
                    Json::str(format!("{:.4}", r.l3.hit_rate())),
                ),
                (
                    "l4_hit".into(),
                    Json::str(format!("{:.4}", r.l4.hit_rate())),
                ),
                ("cycles".into(), Json::u64(r.cycles)),
            ])
        })
        .collect();
    // No scheduling or replay-mode facts on stdout: the report must be
    // byte-identical between streamed and preloaded replay and for any
    // --jobs (CI compares the two outputs with `cmp`).
    let out = Json::Obj(vec![
        (
            "trace".into(),
            Json::Obj(vec![
                (
                    "content_hash".into(),
                    Json::str(format!("{:016x}", binding.content_hash())),
                ),
                ("streams".into(), Json::u64(u64::from(binding.cores()))),
                ("records".into(), Json::u64(binding.records())),
            ]),
        ),
        (
            "config".into(),
            Json::Obj(vec![
                ("spec".into(), Json::str(&wl_name)),
                ("seed".into(), Json::u64(seed)),
                ("scale".into(), Json::u64(scale)),
                ("warmup_records".into(), Json::u64(warmup)),
                ("measure_records".into(), Json::u64(measure)),
                ("skew".into(), Json::Bool(skew)),
            ]),
        ),
        ("runs".into(), Json::Arr(runs)),
    ]);
    println!("{}", out.render());
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = raw.first().map(String::as_str) else {
        eprintln!("usage: dice-ingest <gen|pack|unpack|info|sweep> [flags] (see --help)");
        std::process::exit(2);
    };
    let rest = &raw[1..];
    match cmd {
        "gen" => cmd_gen(&Args::parse(
            rest,
            &[
                "--out",
                "--spec",
                "--cores",
                "--records",
                "--seed",
                "--scale",
            ],
            &["--no-compress"],
        )),
        "pack" => cmd_pack(&Args::parse(rest, &["--in", "--out"], &["--no-compress"])),
        "unpack" => cmd_unpack(&Args::parse(rest, &["--in", "--out", "--core"], &[])),
        "info" => cmd_info(&Args::parse(rest, &["--in"], &["--strict"])),
        "sweep" => cmd_sweep(&Args::parse(
            rest,
            &[
                "--in",
                "--spec",
                "--seed",
                "--scale",
                "--warmup",
                "--measure",
                "--jobs",
            ],
            &["--replay-in-memory", "--skew"],
        )),
        "--help" | "-h" | "help" => {
            eprintln!("commands: gen pack unpack info sweep (see the module docs)");
        }
        other => {
            eprintln!("unknown command {other:?}; one of: gen pack unpack info sweep");
            std::process::exit(2);
        }
    }
}
