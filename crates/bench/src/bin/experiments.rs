//! Regenerates every table and figure of the DICE paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p dice-bench --bin experiments -- <id> [flags]
//!
//! ids:   fig1f fig4 fig7 fig10 fig11 fig12 fig13 fig14 fig15
//!        tab4 tab5 tab6 tab7 tab8 cip ingest all
//! flags: --list         print the experiment id/description catalog as
//!                       JSON (the same bytes `dice-serve` serves at
//!                       /v1/experiments) and exit
//!        --scale N      footprint/capacity divisor (default 64)
//!        --warmup N     warm-up records per core (default 30000)
//!        --measure N    measured records per core (default 80000)
//!        --seed N       workload seed
//!        --jobs N       simulate cells on N worker threads (default: all
//!                       cores); results are identical for any N
//!        --cache-dir P  persist finished cells under P and skip them on
//!                       re-runs (safe to delete; survives interrupts)
//!        --quiet        suppress per-run progress on stderr
//!        --json PATH    write every run's full report (counters, per-class
//!                       latency quantiles, interval time series) as JSON
//!        --trace PATH   capture per-run transaction traces and write them
//!                       as one Chrome trace_event file (open in Perfetto)
//!        --audit N      run the invariant auditor every N demand records
//!                       (read-only on a healthy system: results are
//!                       identical to an unaudited run)
//!        --inject KIND  arm a deterministic fault injector: tag-flip,
//!                       size-lie, garbled-trace, poisoned-cache,
//!                       cell-panic or cell-timeout (pair with --audit to
//!                       watch detection and recovery)
//!        --cell-timeout S  per-cell wall-clock budget in seconds; cells
//!                       over budget report as timed out, the sweep goes on
//!        --retries N    retry a panicked cell up to N times before
//!                       recording it as failed
//!        --diagnostics  run every cell at TraceLevel::Decisions and append
//!                       per-run decision diagnostics (CIP confusion
//!                       matrices, bandwidth-bloat split, phase cycles)
//!                       after the experiment tables
//! ```
//!
//! Each experiment first *declares* its `(config, workload)` cells; the
//! `dice-runner` engine simulates the deduplicated union in parallel
//! (memoizing into `--cache-dir` if given), and only then do the render
//! functions format tables from the completed runs. A cell or figure that
//! panics is reported and skipped — the rest of the sweep still completes,
//! and the process exits nonzero.
//!
//! Absolute numbers differ from the paper (different substrate, synthetic
//! workloads, scaled system — see DESIGN.md §3); the comparisons within
//! each experiment are the reproduction target.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use dice_bench::workloads::{all26, group_geomeans, nonmem, Group};
use dice_bench::{Ctx, Table};
use dice_compress::{compressed_size, pair_compressed_size};
use dice_core::{DramCacheConfig, Organization, TagVariant};
use dice_obs::{export_chrome, Json, MetricRegistry, TraceLevel};
use dice_runner::{Cell, CellOutcome, Runner, RunnerConfig};
use dice_sim::{SimConfig, WorkloadSet};
use dice_workloads::{spec_table, DataModel, TraceGen};

fn pct(x: f64) -> String {
    format!("{:+.1}%", (x - 1.0) * 100.0)
}

fn ratio(x: f64) -> String {
    format!("{x:.2}x")
}

const DICE: Organization = Organization::Dice { threshold: 36 };

/// One experiment: an id, the cells it needs simulated, and a renderer
/// that formats the completed runs. `cells` is declared up front so the
/// runner can schedule the union of a whole sweep; `render` only reads
/// the memo (it falls back to serial simulation on a miss, so each
/// experiment also works stand-alone).
struct Experiment {
    id: &'static str,
    cells: fn(&Ctx) -> Vec<Cell>,
    render: fn(&Ctx) -> String,
}

/// Every paper artifact, in `all`'s presentation order.
const EXPERIMENTS: &[Experiment] = &[
    Experiment {
        id: "fig4",
        cells: |_| Vec::new(), // pure compression sampling, no simulation
        render: fig4,
    },
    Experiment {
        id: "fig1f",
        cells: |ctx| sweep_cells(ctx, &fig1f_variants()),
        render: fig1f,
    },
    Experiment {
        id: "fig7",
        cells: |ctx| sweep_cells(ctx, &fig7_variants()),
        render: fig7,
    },
    Experiment {
        id: "fig10",
        cells: |ctx| sweep_cells(ctx, &fig10_variants()),
        render: fig10,
    },
    Experiment {
        id: "fig11",
        cells: fig11_cells,
        render: fig11,
    },
    Experiment {
        id: "fig12",
        cells: fig12_cells,
        render: fig12,
    },
    Experiment {
        id: "fig13",
        cells: fig13_cells,
        render: fig13,
    },
    Experiment {
        id: "fig14",
        cells: fig14_cells,
        render: fig14,
    },
    Experiment {
        id: "fig15",
        cells: |ctx| sweep_cells(ctx, &fig15_variants()),
        render: fig15,
    },
    Experiment {
        id: "tab4",
        cells: tab4_cells,
        render: tab4,
    },
    Experiment {
        id: "tab5",
        cells: tab5_cells,
        render: tab5,
    },
    Experiment {
        id: "tab6",
        cells: tab6_cells,
        render: tab6,
    },
    Experiment {
        id: "tab7",
        cells: |ctx| sweep_cells(ctx, &tab7_variants()),
        render: tab7,
    },
    Experiment {
        id: "tab8",
        cells: tab8_cells,
        render: tab8,
    },
    Experiment {
        id: "cip",
        cells: cip_cells,
        render: cip,
    },
    Experiment {
        id: "ingest",
        cells: ingest_cells,
        render: ingest,
    },
];

/// One labeled configuration in a speedup sweep.
struct Variant {
    label: &'static str,
    tag: &'static str,
    cfg: Box<dyn Fn(&Ctx) -> SimConfig>,
}

impl Variant {
    fn org(label: &'static str, tag: &'static str, org: Organization) -> Self {
        Self {
            label,
            tag,
            cfg: Box::new(move |ctx| ctx.cfg(org)),
        }
    }

    fn with(
        label: &'static str,
        tag: &'static str,
        f: impl Fn(&Ctx) -> SimConfig + 'static,
    ) -> Self {
        Self {
            label,
            tag,
            cfg: Box::new(f),
        }
    }
}

/// Cells for a [`speedup_sweep`]: the uncompressed baseline plus every
/// variant, over ALL26.
fn sweep_cells(ctx: &Ctx, variants: &[Variant]) -> Vec<Cell> {
    let mut cells = Vec::new();
    for (_, wl) in all26(ctx.seed) {
        cells.push(ctx.cell("base", ctx.cfg(Organization::UncompressedAlloy), &wl));
        for v in variants {
            cells.push(ctx.cell(v.tag, (v.cfg)(ctx), &wl));
        }
    }
    cells
}

/// Runs `variants` over ALL26, reporting per-workload speedup vs the
/// uncompressed baseline plus RATE/MIX/GAP/ALL26 geometric means.
fn speedup_sweep(ctx: &Ctx, title: &str, variants: &[Variant]) -> String {
    let mut headers = vec!["workload"];
    headers.extend(variants.iter().map(|v| v.label));
    let mut t = Table::new(&headers);
    let sets = all26(ctx.seed);
    let mut per_variant: Vec<Vec<f64>> = vec![Vec::new(); variants.len()];
    let groups: Vec<Group> = sets.iter().map(|(g, _)| *g).collect();

    for (_, wl) in &sets {
        let base = ctx.baseline(wl);
        let mut cells = vec![wl.name.clone()];
        for (vi, v) in variants.iter().enumerate() {
            let r = ctx.run_cfg(v.tag, (v.cfg)(ctx), wl);
            let s = r.weighted_speedup(&base);
            per_variant[vi].push(s);
            cells.push(format!("{s:.3}"));
        }
        t.row(&cells);
    }
    t.separator();
    for (label, pick) in [("RATE", 0usize), ("MIX", 1), ("GAP", 2), ("ALL26", 3)] {
        let mut cells = vec![label.to_owned()];
        for vals in &per_variant {
            let (r, m, g, all) = group_geomeans(&groups, vals);
            let v = [r, m, g, all][pick];
            cells.push(pct(v));
        }
        t.row(&cells);
    }
    format!("{title}\n\n{}", t.render())
}

fn fig1f_variants() -> Vec<Variant> {
    vec![
        Variant::with("2xCap", "2xcap", |c| {
            c.cfg(Organization::UncompressedAlloy)
                .with_double_l4_capacity()
        }),
        Variant::with("2xBW", "2xbw", |c| {
            c.cfg(Organization::UncompressedAlloy)
                .with_double_l4_bandwidth()
        }),
        Variant::with("2xBoth", "2xboth", |c| {
            c.cfg(Organization::UncompressedAlloy)
                .with_double_l4_capacity()
                .with_double_l4_bandwidth()
        }),
    ]
}

/// Figure 1(f): potential speedup from doubling capacity, bandwidth, both.
fn fig1f(ctx: &Ctx) -> String {
    speedup_sweep(
        ctx,
        "Figure 1(f): potential speedup of idealized caches (vs 1x baseline)\n\
         Paper: 2x Capacity ~ +10%, 2x Both ~ +22% on average.",
        &fig1f_variants(),
    )
}

/// Figure 4: fraction of compressible lines per workload.
fn fig4(ctx: &Ctx) -> String {
    let mut t = Table::new(&["workload", "single<=32", "single<=36", "double<=68"]);
    let mut all = [0.0f64; 3];
    let specs = spec_table();
    for spec in &specs {
        let data = DataModel::new(spec, ctx.seed ^ 0xda7a);
        let mut gen = TraceGen::with_scale(spec, 0, ctx.seed, ctx.scale);
        let (mut le32, mut le36, mut pair68, mut n) = (0u64, 0u64, 0u64, 0u64);
        for _ in 0..6000 {
            let line = gen.next_record().line;
            let s = compressed_size(&data.line_data(line));
            let p = pair_compressed_size(&data.line_data(line & !1), &data.line_data(line | 1));
            n += 1;
            le32 += u64::from(s <= 32);
            le36 += u64::from(s <= 36);
            pair68 += u64::from(p <= 68);
        }
        let f = |x: u64| 100.0 * x as f64 / n as f64;
        t.row(&[
            spec.name.to_owned(),
            format!("{:.0}%", f(le32)),
            format!("{:.0}%", f(le36)),
            format!("{:.0}%", f(pair68)),
        ]);
        all[0] += f(le32);
        all[1] += f(le36);
        all[2] += f(pair68);
    }
    t.separator();
    let n = specs.len() as f64;
    t.row(&[
        "MEAN".into(),
        format!("{:.0}%", all[0] / n),
        format!("{:.0}%", all[1] / n),
        format!("{:.0}%", all[2] / n),
    ]);
    format!(
        "Figure 4: fraction of compressible lines (sampled from the access stream)\n\
         Paper: on average 52% of adjacent pairs compress to <=68B (one 72B TAD).\n\n{}",
        t.render()
    )
}

fn fig7_variants() -> Vec<Variant> {
    vec![
        Variant::org("TSI", "tsi", Organization::CompressedTsi),
        Variant::org("BAI", "bai", Organization::CompressedBai),
        Variant::with("2xCap", "2xcap", |c| {
            c.cfg(Organization::UncompressedAlloy)
                .with_double_l4_capacity()
        }),
        Variant::with("2xCap2xBW", "2xboth", |c| {
            c.cfg(Organization::UncompressedAlloy)
                .with_double_l4_capacity()
                .with_double_l4_bandwidth()
        }),
    ]
}

/// Figure 7: static TSI and BAI vs idealized caches.
fn fig7(ctx: &Ctx) -> String {
    speedup_sweep(
        ctx,
        "Figure 7: compression with static indexing vs idealized caches\n\
         Paper: TSI ~ +7% (never hurts); BAI ~ +0.1% on average (wins on\n\
         compressible workloads, thrashes on incompressible ones).",
        &fig7_variants(),
    )
}

fn fig10_variants() -> Vec<Variant> {
    vec![
        Variant::org("TSI", "tsi", Organization::CompressedTsi),
        Variant::org("BAI", "bai", Organization::CompressedBai),
        Variant::org("DICE", "dice36", DICE),
        Variant::with("2xCap2xBW", "2xboth", |c| {
            c.cfg(Organization::UncompressedAlloy)
                .with_double_l4_capacity()
                .with_double_l4_bandwidth()
        }),
    ]
}

/// Figure 10: the headline result.
fn fig10(ctx: &Ctx) -> String {
    speedup_sweep(
        ctx,
        "Figure 10: TSI vs BAI vs DICE vs a double-capacity double-bandwidth cache\n\
         Paper: DICE +19.0% on average, within 3% of 2xCap+2xBW's +21.9%.",
        &fig10_variants(),
    )
}

fn fig11_cells(ctx: &Ctx) -> Vec<Cell> {
    all26(ctx.seed)
        .iter()
        .map(|(_, wl)| ctx.cell("dice36", ctx.cfg(DICE), wl))
        .collect()
}

/// Figure 11: install-index distribution under DICE.
fn fig11(ctx: &Ctx) -> String {
    let mut t = Table::new(&["workload", "invariant", "TSI", "BAI"]);
    let mut tsi_sum = 0.0;
    let mut bai_sum = 0.0;
    let sets = all26(ctx.seed);
    for (_, wl) in &sets {
        let r = ctx.dice(wl);
        let total = r.l4.installs().max(1) as f64;
        let inv = 100.0 * r.l4.installs_invariant as f64 / total;
        let tsi = 100.0 * r.l4.installs_tsi as f64 / total;
        let bai = 100.0 * r.l4.installs_bai as f64 / total;
        tsi_sum += tsi;
        bai_sum += bai;
        t.row(&[
            wl.name.clone(),
            format!("{inv:.0}%"),
            format!("{tsi:.0}%"),
            format!("{bai:.0}%"),
        ]);
    }
    t.separator();
    let n = sets.len() as f64;
    let (tm, bm) = (tsi_sum / n, bai_sum / n);
    t.row(&[
        "MEAN".into(),
        format!("{:.0}%", 100.0 - tm - bm),
        format!("{tm:.0}%"),
        format!("{bm:.0}%"),
    ]);
    format!(
        "Figure 11: distribution of install indices under DICE\n\
         Paper: ~50% of lines are invariant (TSI==BAI); of the rest, a 52/48\n\
         skew toward TSI (incompressible workloads push whole caches to TSI).\n\n{}",
        t.render()
    )
}

/// A KNL-style L4: same organization, no neighbor tag in the TAD.
fn knl_cfg(ctx: &Ctx, org: Organization) -> SimConfig {
    let mut cfg = ctx.cfg(org);
    cfg.l4 = DramCacheConfig {
        tag_variant: TagVariant::Knl,
        ..cfg.l4
    };
    cfg
}

fn fig12_cells(ctx: &Ctx) -> Vec<Cell> {
    let mut cells = Vec::new();
    for (_, wl) in all26(ctx.seed) {
        cells.push(ctx.cell(
            "knl-base",
            knl_cfg(ctx, Organization::UncompressedAlloy),
            &wl,
        ));
        cells.push(ctx.cell("knl-dice", knl_cfg(ctx, DICE), &wl));
    }
    cells
}

/// Figure 12: DICE on a KNL-style cache (no neighbor tag).
fn fig12(ctx: &Ctx) -> String {
    let sets = all26(ctx.seed);
    let mut t = Table::new(&["workload", "DICE-on-KNL"]);
    let mut vals = Vec::new();
    let groups: Vec<Group> = sets.iter().map(|(g, _)| *g).collect();
    for (_, wl) in &sets {
        let base = ctx.run_cfg(
            "knl-base",
            knl_cfg(ctx, Organization::UncompressedAlloy),
            wl,
        );
        let dice = ctx.run_cfg("knl-dice", knl_cfg(ctx, DICE), wl);
        let s = dice.weighted_speedup(&base);
        vals.push(s);
        t.row(&[wl.name.clone(), format!("{s:.3}")]);
    }
    t.separator();
    let (r, m, g, all) = group_geomeans(&groups, &vals);
    for (label, v) in [("RATE", r), ("MIX", m), ("GAP", g), ("ALL26", all)] {
        t.row(&[label.into(), pct(v)]);
    }
    format!(
        "Figure 12: DICE on an Intel Knights Landing-style DRAM cache\n\
         Paper: +17.5% (within 2% of DICE on Alloy), because merged same-row\n\
         second probes keep the both-location miss checks cheap.\n\n{}",
        t.render()
    )
}

fn fig13_cells(ctx: &Ctx) -> Vec<Cell> {
    let mut cells = Vec::new();
    for wl in nonmem(ctx.seed) {
        cells.push(ctx.cell("base", ctx.cfg(Organization::UncompressedAlloy), &wl));
        cells.push(ctx.cell("dice36", ctx.cfg(DICE), &wl));
    }
    cells
}

/// Figure 13: non-memory-intensive workloads.
fn fig13(ctx: &Ctx) -> String {
    let mut t = Table::new(&["workload", "DICE speedup"]);
    let mut vals = Vec::new();
    for wl in nonmem(ctx.seed) {
        let base = ctx.baseline(&wl);
        let dice = ctx.dice(&wl);
        let s = dice.weighted_speedup(&base);
        vals.push(s);
        t.row(&[wl.name.clone(), format!("{s:.3}")]);
    }
    t.separator();
    let gm = {
        let s: f64 = vals.iter().map(|v: &f64| v.ln()).sum();
        (s / vals.len() as f64).exp()
    };
    t.row(&["GMEAN".into(), pct(gm)]);
    format!(
        "Figure 13: DICE on non-memory-intensive SPEC (L3 MPKI < 2)\n\
         Paper: ~+2% average, and crucially no workload degrades.\n\n{}",
        t.render()
    )
}

/// The `(tag, organization)` columns of Figure 14 / Table 5.
const COMPRESSED_ORGS: [(&str, Organization); 3] = [
    ("tsi", Organization::CompressedTsi),
    ("bai", Organization::CompressedBai),
    ("dice36", DICE),
];

fn fig14_cells(ctx: &Ctx) -> Vec<Cell> {
    let mut cells = Vec::new();
    for (_, wl) in all26(ctx.seed) {
        cells.push(ctx.cell("base", ctx.cfg(Organization::UncompressedAlloy), &wl));
        for (tag, org) in COMPRESSED_ORGS {
            cells.push(ctx.cell(tag, ctx.cfg(org), &wl));
        }
    }
    cells
}

/// Figure 14: power / performance / energy / EDP, normalized to baseline.
fn fig14(ctx: &Ctx) -> String {
    let mut t = Table::new(&["metric", "Baseline", "TSI", "BAI", "DICE"]);
    let sets = all26(ctx.seed);
    // Log-sums of per-workload ratios per org: [power, perf, energy, edp].
    let mut sums = [[0.0f64; 4]; 3];
    for (_, wl) in &sets {
        let base = ctx.baseline(wl);
        for (oi, (tag, org)) in COMPRESSED_ORGS.iter().enumerate() {
            let r = ctx.run_org(tag, *org, wl);
            let speed = r.weighted_speedup(&base);
            let power = r.energy.power_watts() / base.energy.power_watts();
            let energy = r.energy.total_joules() / base.energy.total_joules();
            let edp = r.energy.edp() / base.energy.edp();
            for (k, v) in [power, speed, energy, edp].into_iter().enumerate() {
                sums[oi][k] += v.max(1e-12).ln();
            }
        }
    }
    let n = sets.len() as f64;
    let names = ["Power", "Performance", "Energy", "EDP"];
    for (k, name) in names.iter().enumerate() {
        let mut cells = vec![(*name).to_owned(), "1.00".to_owned()];
        for org_sums in &sums {
            cells.push(format!("{:.2}", (org_sums[k] / n).exp()));
        }
        t.row(&cells);
    }
    format!(
        "Figure 14: L4+memory power, performance, energy and EDP (normalized)\n\
         Paper: DICE reduces energy by ~24% and EDP by ~36%.\n\n{}",
        t.render()
    )
}

fn fig15_variants() -> Vec<Variant> {
    vec![
        Variant::org("SCC", "scc", Organization::Scc),
        Variant::org("DICE", "dice36", DICE),
    ]
}

/// Figure 15: SCC on a DRAM cache vs DICE.
fn fig15(ctx: &Ctx) -> String {
    speedup_sweep(
        ctx,
        "Figure 15: Skewed Compressed Cache mapped onto DRAM vs DICE\n\
         Paper: SCC ~ -22% (3 tag probes + 1 data probe per request burn the\n\
         bandwidth compression was supposed to save); DICE +19%.",
        &fig15_variants(),
    )
}

/// Table 4's threshold sweep: `(tag, threshold)`.
const TAB4_THRESHOLDS: [(&str, u32); 3] = [("dice32", 32), ("dice36", 36), ("dice40", 40)];

fn tab4_cells(ctx: &Ctx) -> Vec<Cell> {
    let mut cells = Vec::new();
    for (_, wl) in all26(ctx.seed) {
        cells.push(ctx.cell("base", ctx.cfg(Organization::UncompressedAlloy), &wl));
        for (tag, thr) in TAB4_THRESHOLDS {
            cells.push(ctx.cell(tag, ctx.cfg(Organization::Dice { threshold: thr }), &wl));
        }
    }
    cells
}

/// Table 4: sensitivity to the DICE insertion threshold.
fn tab4(ctx: &Ctx) -> String {
    let sets = all26(ctx.seed);
    let groups: Vec<Group> = sets.iter().map(|(g, _)| *g).collect();
    let mut t = Table::new(&["group", "<=32B", "<=36B", "<=40B"]);
    let mut per: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for (_, wl) in &sets {
        let base = ctx.baseline(wl);
        for (i, (tag, thr)) in TAB4_THRESHOLDS.into_iter().enumerate() {
            let r = ctx.run_org(tag, Organization::Dice { threshold: thr }, wl);
            per[i].push(r.weighted_speedup(&base));
        }
    }
    let mut cols: Vec<[f64; 3]> = Vec::new();
    for p in &per {
        let (r, m, g, all) = group_geomeans(&groups, p);
        let _ = m;
        cols.push([r, g, all]);
    }
    for (label, idx) in [("SPEC RATE", 0usize), ("GAP", 1), ("GMEAN26", 2)] {
        t.row(&[
            label.into(),
            pct(cols[0][idx]),
            pct(cols[1][idx]),
            pct(cols[2][idx]),
        ]);
    }
    format!(
        "Table 4: DICE threshold sensitivity\n\
         Paper: 36B maximizes performance (BDI's B4D2 single is 36B; the pair\n\
         shares a base into 68B, exactly one shared-tag TAD).\n\n{}",
        t.render()
    )
}

fn tab5_cells(ctx: &Ctx) -> Vec<Cell> {
    let mut cells = Vec::new();
    for (_, wl) in all26(ctx.seed) {
        for (tag, org) in COMPRESSED_ORGS {
            cells.push(ctx.cell(tag, ctx.cfg(org), &wl));
        }
    }
    cells
}

/// Table 5: effective capacity of TSI / BAI / DICE.
fn tab5(ctx: &Ctx) -> String {
    let sets = all26(ctx.seed);
    let groups: Vec<Group> = sets.iter().map(|(g, _)| *g).collect();
    let mut t = Table::new(&["group", "TSI", "BAI", "DICE"]);
    let mut per: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for (_, wl) in &sets {
        for (i, (tag, org)) in COMPRESSED_ORGS.iter().enumerate() {
            let r = ctx.run_org(tag, *org, wl);
            per[i].push(r.capacity_ratio());
        }
    }
    let mut cols: Vec<[f64; 3]> = Vec::new();
    for p in &per {
        let (r, m, g, all) = group_geomeans(&groups, p);
        let _ = m;
        cols.push([r, g, all]);
    }
    for (label, idx) in [("SPEC RATE", 0usize), ("GAP", 1), ("GMEAN26", 2)] {
        t.row(&[
            label.into(),
            ratio(cols[0][idx]),
            ratio(cols[1][idx]),
            ratio(cols[2][idx]),
        ]);
    }
    format!(
        "Table 5: effective DRAM-cache capacity (valid lines / baseline lines)\n\
         Paper: TSI 1.24x, BAI 1.69x, DICE 1.62x on average; GAP up to ~5x.\n\n{}",
        t.render()
    )
}

fn tab6_cells(ctx: &Ctx) -> Vec<Cell> {
    let mut cells = Vec::new();
    for (_, wl) in all26(ctx.seed) {
        cells.push(ctx.cell("base", ctx.cfg(Organization::UncompressedAlloy), &wl));
        cells.push(ctx.cell("dice36", ctx.cfg(DICE), &wl));
    }
    cells
}

/// Table 6: L3 hit rate, baseline vs DICE.
fn tab6(ctx: &Ctx) -> String {
    let sets = all26(ctx.seed);
    let groups: Vec<Group> = sets.iter().map(|(g, _)| *g).collect();
    let mut base_v = Vec::new();
    let mut dice_v = Vec::new();
    for (_, wl) in &sets {
        base_v.push(ctx.baseline(wl).l3.hit_rate() * 100.0);
        dice_v.push(ctx.dice(wl).l3.hit_rate() * 100.0);
    }
    let mean = |v: &[f64], g: Option<Group>| -> f64 {
        let vals: Vec<f64> = v
            .iter()
            .zip(&groups)
            .filter(|(_, gg)| g.is_none() || Some(**gg) == g)
            .map(|(x, _)| *x)
            .collect();
        vals.iter().sum::<f64>() / vals.len() as f64
    };
    let mut t = Table::new(&["group", "BASE", "DICE"]);
    for (label, g) in [
        ("SPEC RATE", Some(Group::Rate)),
        ("SPEC MIX", Some(Group::Mix)),
        ("GAP", Some(Group::Gap)),
        ("AVG26", None),
    ] {
        t.row(&[
            label.into(),
            format!("{:.1}%", mean(&base_v, g)),
            format!("{:.1}%", mean(&dice_v, g)),
        ]);
    }
    format!(
        "Table 6: L3 hit rate — the free adjacent lines DICE installs in L3\n\
         Paper: 37.0% -> 43.6% on average.\n\n{}",
        t.render()
    )
}

fn tab7_variants() -> Vec<Variant> {
    use dice_cache::L3FetchPolicy;
    vec![
        Variant::with("128B-PF", "base-128", |c| {
            let mut cfg = c.cfg(Organization::UncompressedAlloy);
            cfg.l3_fetch = L3FetchPolicy::Wide128;
            cfg
        }),
        Variant::with("NL-PF", "base-nl", |c| {
            let mut cfg = c.cfg(Organization::UncompressedAlloy);
            cfg.l3_fetch = L3FetchPolicy::NextLine;
            cfg
        }),
        Variant::org("DICE", "dice36", DICE),
        Variant::with("DICE+NL", "dice-nl", |c| {
            let mut cfg = c.cfg(DICE);
            cfg.l3_fetch = L3FetchPolicy::NextLine;
            cfg
        }),
    ]
}

/// Table 7: DICE vs prefetch-style ways of getting the adjacent line.
fn tab7(ctx: &Ctx) -> String {
    speedup_sweep(
        ctx,
        "Table 7: wide fetch / next-line prefetch vs DICE (and DICE+NL)\n\
         Paper: 128B fetch +1.9%, next-line PF +1.6%, DICE +19.0%, DICE+NL +20.9%\n\
         — prefetches pay full bandwidth for the extra line; DICE gets it free.",
        &tab7_variants(),
    )
}

type Adjust = fn(SimConfig) -> SimConfig;

/// Table 8's cache variants: `(baseline tag, DICE tag, adjuster)`.
const TAB8_VARIANTS: [(&str, &str, Adjust); 4] = [
    ("base", "dice36", |c| c),
    ("2xcap", "dice-2xcap", SimConfig::with_double_l4_capacity),
    ("2xbw", "dice-2xbw", SimConfig::with_double_l4_bandwidth),
    ("base-hl", "dice-hl", SimConfig::with_half_l4_latency),
];

fn tab8_cells(ctx: &Ctx) -> Vec<Cell> {
    let mut cells = Vec::new();
    for (_, wl) in all26(ctx.seed) {
        for (base_tag, dice_tag, adjust) in TAB8_VARIANTS {
            cells.push(ctx.cell(
                base_tag,
                adjust(ctx.cfg(Organization::UncompressedAlloy)),
                &wl,
            ));
            cells.push(ctx.cell(dice_tag, adjust(ctx.cfg(DICE)), &wl));
        }
    }
    cells
}

/// Table 8: DICE on bigger / wider / faster caches.
fn tab8(ctx: &Ctx) -> String {
    let sets = all26(ctx.seed);
    let groups: Vec<Group> = sets.iter().map(|(g, _)| *g).collect();
    let mut t = Table::new(&["group", "Base", "2xCap", "2xBW", "50%Lat"]);
    let mut per: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for (_, wl) in &sets {
        for (i, (base_tag, dice_tag, adjust)) in TAB8_VARIANTS.iter().enumerate() {
            let base = ctx.run_cfg(
                base_tag,
                adjust(ctx.cfg(Organization::UncompressedAlloy)),
                wl,
            );
            let dice = ctx.run_cfg(dice_tag, adjust(ctx.cfg(DICE)), wl);
            per[i].push(dice.weighted_speedup(&base));
        }
    }
    let mut cols: Vec<[f64; 3]> = Vec::new();
    for p in &per {
        let (r, m, g, all) = group_geomeans(&groups, p);
        let _ = m;
        cols.push([r, g, all]);
    }
    for (label, idx) in [("SPEC RATE", 0usize), ("GAP", 1), ("GMEAN26", 2)] {
        t.row(&[
            label.into(),
            pct(cols[0][idx]),
            pct(cols[1][idx]),
            pct(cols[2][idx]),
            pct(cols[3][idx]),
        ]);
    }
    format!(
        "Table 8: DICE speedup on different cache configurations (each vs its\n\
         own uncompressed counterpart)\n\
         Paper: +19.0% base, +13.2% at 2x capacity, +24.5% at 2x BW, +24.4% at\n\
         half latency.\n\n{}",
        t.render()
    )
}

/// The CIP sweep's representative workload subset (keeps it fast; accuracy
/// is averaged over workloads, weighted by prediction count).
const CIP_SUBSET: [&str; 8] = [
    "mcf", "soplex", "gcc", "sphinx", "zeusmp", "astar", "cc_twi", "pr_web",
];
const CIP_ENTRIES: [usize; 5] = [512, 1024, 2048, 4096, 8192];

fn cip_cfg(ctx: &Ctx, entries: usize) -> SimConfig {
    let mut cfg = ctx.cfg(DICE);
    cfg.l4.ltt_entries = entries;
    cfg
}

fn cip_cells(ctx: &Ctx) -> Vec<Cell> {
    let mut cells = Vec::new();
    for entries in CIP_ENTRIES {
        let tag = format!("cip-{entries}");
        for name in CIP_SUBSET {
            let spec = spec_table()
                .into_iter()
                .find(|w| w.name == name)
                .expect("spec table covers every rate-mode workload name");
            let wl = WorkloadSet::rate(spec, ctx.seed);
            cells.push(ctx.cell(&tag, cip_cfg(ctx, entries), &wl));
        }
    }
    cells
}

/// §5.3: CIP accuracy vs LTT size, plus write-prediction accuracy.
fn cip(ctx: &Ctx) -> String {
    let mut t = Table::new(&["LTT entries", "storage", "read accuracy", "write accuracy"]);
    for entries in CIP_ENTRIES {
        let mut correct_w = 0.0;
        let mut total = 0.0;
        let mut wcorrect = 0.0;
        let mut wtotal = 0.0;
        for name in CIP_SUBSET {
            let spec = spec_table()
                .into_iter()
                .find(|w| w.name == name)
                .expect("spec table covers every rate-mode workload name");
            let wl = WorkloadSet::rate(spec, ctx.seed);
            let tag = format!("cip-{entries}");
            let r = ctx.run_cfg(&tag, cip_cfg(ctx, entries), &wl);
            correct_w += r.cip_accuracy * r.cip_predictions as f64;
            total += r.cip_predictions as f64;
            wcorrect += r.l4.write_prediction_accuracy() * r.l4.wpred_scored as f64;
            wtotal += r.l4.wpred_scored as f64;
        }
        t.row(&[
            format!("{entries}"),
            format!("{} B", entries / 8),
            format!("{:.1}%", 100.0 * correct_w / total.max(1.0)),
            format!("{:.1}%", 100.0 * wcorrect / wtotal.max(1.0)),
        ]);
    }
    format!(
        "CIP accuracy vs Last-Time-Table size (Section 5.3)\n\
         Paper: 93.2% at 512 entries to 94.1% at 8192; default 2048 = 256B at\n\
         93.8%; write (compressibility-based) prediction ~95%.\n\n{}",
        t.render()
    )
}

/// The specs whose generator streams are packed into the `ingest`
/// experiment's `.dtf` trace, one stream per entry.
const INGEST_STREAM_SPECS: [&str; 4] = ["mcf", "lbm", "gcc", "soplex"];
const INGEST_STREAM_RECORDS: u64 = 20_000;

/// Builds (or reuses) the `ingest` experiment's packed trace: one
/// generator stream per [`INGEST_STREAM_SPECS`] entry, deterministic in
/// the context's seed and scale (which name the file, so differently
/// parameterized invocations never collide).
fn ingest_trace(ctx: &Ctx) -> dice_ingest::TraceBinding {
    use dice_ingest::{DtfWriter, TraceBinding};
    let path =
        std::env::temp_dir().join(format!("dice-exp-ingest-{:x}-{}.dtf", ctx.seed, ctx.scale));
    let cores = INGEST_STREAM_SPECS.len() as u32;
    if let Ok(b) = TraceBinding::open(&path) {
        // Same seed/scale regenerate byte-identical content, so an
        // existing well-formed file of the right shape is reusable as-is.
        if b.cores() == cores && b.records() == INGEST_STREAM_RECORDS * u64::from(cores) {
            return b;
        }
    }
    let mut w = DtfWriter::create(&path, cores, true).expect("creating the ingest trace");
    for (core, name) in INGEST_STREAM_SPECS.iter().enumerate() {
        let spec = spec_table()
            .into_iter()
            .find(|s| s.name == *name)
            .expect("ingest stream specs are in the spec table");
        let mut gen = TraceGen::with_scale(&spec, core as u32, ctx.seed, ctx.scale);
        for _ in 0..INGEST_STREAM_RECORDS {
            w.push_record(core as u32, gen.next_record())
                .expect("encoding the ingest trace");
        }
    }
    w.finish().expect("writing the ingest trace");
    TraceBinding::open(&path).expect("reopening the ingest trace")
}

/// The ingest experiment's two workload sets: the same trace binding,
/// streamed with bounded memory vs preloaded into RAM.
fn ingest_workloads(ctx: &Ctx) -> (WorkloadSet, WorkloadSet) {
    let binding = ingest_trace(ctx);
    let spec = spec_table()
        .into_iter()
        .find(|s| s.name == "mcf")
        .expect("mcf is in the spec table");
    let streamed = WorkloadSet::traced("dtf-mix", spec, ctx.seed, binding.clone());
    let preload = streamed
        .clone()
        .with_trace(Some(binding.with_preload(true)));
    (streamed, preload)
}

fn ingest_cells(ctx: &Ctx) -> Vec<Cell> {
    let (streamed, preload) = ingest_workloads(ctx);
    vec![
        ctx.cell(
            "base-stream",
            ctx.cfg(Organization::UncompressedAlloy),
            &streamed,
        ),
        ctx.cell("dice-stream", ctx.cfg(DICE), &streamed),
        ctx.cell(
            "base-mem",
            ctx.cfg(Organization::UncompressedAlloy),
            &preload,
        ),
        ctx.cell("dice-mem", ctx.cfg(DICE), &preload),
    ]
}

/// Trace ingestion: DICE vs baseline driven by a packed `.dtf` trace,
/// with the streamed and preloaded replays cross-checked byte-for-byte.
fn ingest(ctx: &Ctx) -> String {
    let (streamed, preload) = ingest_workloads(ctx);
    let base_s = ctx.run_cfg(
        "base-stream",
        ctx.cfg(Organization::UncompressedAlloy),
        &streamed,
    );
    let base_m = ctx.run_cfg(
        "base-mem",
        ctx.cfg(Organization::UncompressedAlloy),
        &preload,
    );
    let dice_s = ctx.run_cfg("dice-stream", ctx.cfg(DICE), &streamed);
    let dice_m = ctx.run_cfg("dice-mem", ctx.cfg(DICE), &preload);
    let mut t = Table::new(&["org", "streamed", "preloaded", "l4 hit", "identical"]);
    for (label, s, m, su_s, su_m) in [
        ("Baseline", &base_s, &base_m, 1.0, 1.0),
        (
            "DICE",
            &dice_s,
            &dice_m,
            dice_s.weighted_speedup(&base_s),
            dice_m.weighted_speedup(&base_m),
        ),
    ] {
        let identical = s.to_json().render() == m.to_json().render();
        t.row(&[
            label.to_owned(),
            format!("{su_s:.3}"),
            format!("{su_m:.3}"),
            format!("{:.0}%", 100.0 * s.l4.hit_rate()),
            if identical { "yes" } else { "DIVERGED" }.to_owned(),
        ]);
    }
    let binding = ingest_trace(ctx);
    format!(
        "Trace ingestion: {} streams, {} records, content hash {:016x}\n\
         Bounded-memory streaming off the .dtf must match an in-memory replay\n\
         byte-for-byte ('identical' compares the full report JSON).\n\n{}",
        binding.cores(),
        binding.records(),
        binding.content_hash(),
        t.render()
    )
}

/// Developer aid: detailed counters for one workload under the main
/// organizations (not a paper artifact; used for calibration).
fn inspect(ctx: &Ctx, workload: &str) -> String {
    let spec = spec_table()
        .into_iter()
        .find(|w| w.name == workload)
        .unwrap_or_else(|| panic!("unknown workload {workload}"));
    let wl = WorkloadSet::rate(spec, ctx.seed);
    let mut t = Table::new(&[
        "org", "speedup", "cycles", "l3hit", "l4hit", "l4reads", "free", "l4wr", "fills", "memrd",
        "memwr", "l4bus%", "membus%", "l4rowhit", "l4lat", "memlat", "qstall", "cap",
    ]);
    let base = ctx.baseline(&wl);
    for (tag, org) in [
        ("base", Organization::UncompressedAlloy),
        ("tsi", Organization::CompressedTsi),
        ("bai", Organization::CompressedBai),
        ("dice36", DICE),
    ] {
        let r = ctx.run_org(tag, org, &wl);
        let cyc = r.cycles.max(1) as f64;
        let l4_busy = 100.0 * r.l4_dram.busy_cycles as f64 / (4.0 * cyc);
        let mem_busy = 100.0 * r.mem_dram.busy_cycles as f64 / cyc;
        t.row(&[
            tag.into(),
            format!("{:.3}", r.weighted_speedup(&base)),
            format!("{}k", r.cycles / 1000),
            format!("{:.0}%", 100.0 * r.l3.hit_rate()),
            format!("{:.0}%", 100.0 * r.l4.hit_rate()),
            format!("{}", r.l4.reads),
            format!("{}", r.l4.free_lines),
            format!("{}", r.l4.writebacks),
            format!("{}", r.l4.fills),
            format!("{}", r.mem_dram.reads),
            format!("{}", r.mem_dram.writes),
            format!("{l4_busy:.0}%"),
            format!("{mem_busy:.0}%"),
            format!("{:.0}%", 100.0 * r.l4_dram.row_hit_rate()),
            format!("{:.0}", r.l4_dram.mean_latency()),
            format!("{:.0}", r.mem_dram.mean_latency()),
            format!("{}+{}", r.l4_dram.queue_stalls, r.mem_dram.queue_stalls),
            format!("{:.2}", r.capacity_ratio()),
        ]);
    }
    format!("inspect {workload}\n\n{}", t.render())
}

/// Serializes every memoized run plus invocation metadata.
///
/// Deliberately excludes scheduling details (jobs, cache hits, wall time)
/// so the artifact is byte-identical for any `--jobs` / `--cache-dir`.
fn json_dump(ctx: &Ctx, id: &str) -> Json {
    Json::Obj(vec![
        (
            "meta".into(),
            Json::Obj(vec![
                ("experiment".into(), Json::str(id)),
                ("scale".into(), Json::u64(ctx.scale)),
                ("warmup_records".into(), Json::u64(ctx.warmup)),
                ("measure_records".into(), Json::u64(ctx.measure)),
                ("seed".into(), Json::u64(ctx.seed)),
            ]),
        ),
        (
            "runs".into(),
            Json::Arr(
                ctx.reports()
                    .iter()
                    .map(|(tag, wl, r)| {
                        Json::Obj(vec![
                            ("tag".into(), Json::str(tag)),
                            ("workload".into(), Json::str(wl)),
                            ("report".into(), r.to_json()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Merges every memoized run's trace into one Chrome trace_event array,
/// one process row per run.
fn trace_dump(ctx: &Ctx) -> Json {
    let mut events = Vec::new();
    for (pid, (tag, wl, r)) in ctx.reports().iter().enumerate() {
        let label = format!("{tag}/{wl}");
        if let Json::Arr(evs) = export_chrome(&r.trace, &label, pid as u32 + 1, 3.2) {
            events.extend(evs);
        }
    }
    Json::Arr(events)
}

/// `--diagnostics`: decision-level diagnostics for every memoized run
/// that carried them (i.e. ran above `TraceLevel::Off`). Two tables: the
/// CIP confusion matrices (predicted scheme x actual, read-time and
/// fill-time), then the bandwidth-bloat split and phase-cycle
/// attribution. Counts cover the whole run (warmup included, matching
/// `cip_accuracy`); phases cover the measured window.
fn render_diagnostics(ctx: &Ctx) -> String {
    let runs: Vec<(String, dice_sim::RunDiag)> = ctx
        .reports()
        .iter()
        .filter_map(|(tag, wl, r)| r.diag.map(|d| (format!("{tag}/{wl}"), d)))
        .collect();
    if runs.is_empty() {
        return "Decision diagnostics: no completed run carried them\n\
                (cells executed at TraceLevel::Off)."
            .to_owned();
    }
    let mut cip = Table::new(&[
        "run", "rd B>B", "rd B>T", "rd T>B", "rd T>T", "rd acc", "fi B>B", "fi B>T", "fi T>B",
        "fi T>T", "agree",
    ]);
    for (name, d) in &runs {
        let dd = d.decisions;
        cip.row(&[
            name.clone(),
            dd.cip_read_bai_bai.to_string(),
            dd.cip_read_bai_tsi.to_string(),
            dd.cip_read_tsi_bai.to_string(),
            dd.cip_read_tsi_tsi.to_string(),
            format!("{:.1}%", 100.0 * dd.read_accuracy()),
            dd.cip_fill_bai_bai.to_string(),
            dd.cip_fill_bai_tsi.to_string(),
            dd.cip_fill_tsi_bai.to_string(),
            dd.cip_fill_tsi_tsi.to_string(),
            format!("{:.1}%", 100.0 * dd.fill_agreement()),
        ]);
    }
    let mut bw = Table::new(&[
        "run",
        "moved KB",
        "need KB",
        "bloat",
        "2nd-probe",
        "rmw",
        "tag/fmt",
        "probe kc",
        "data kc",
        "fill kc",
        "wb kc",
    ]);
    let kb = |b: u64| format!("{:.0}", b as f64 / 1024.0);
    let kc = |c: u64| format!("{}", c / 1000);
    for (name, d) in &runs {
        let dd = d.decisions;
        let p = d.phases;
        bw.row(&[
            name.clone(),
            kb(dd.bytes_moved),
            kb(dd.bytes_needed),
            ratio(dd.bloat_factor()),
            kb(dd.bloat_second_probe_bytes),
            kb(dd.bloat_rmw_bytes),
            kb(dd.bloat_tag_overhead_bytes()),
            kc(p.tag_probe_cycles),
            kc(p.data_transfer_cycles),
            kc(p.fill_cycles),
            kc(p.writeback_cycles),
        ]);
    }
    format!(
        "Decision diagnostics: CIP confusion (predicted > actual, whole run)\n\n{}\n\
         Bandwidth bloat split (KB) and phase cycles (thousands, measured window)\n\n{}",
        cip.render(),
        bw.render()
    )
}

/// Declares every selected experiment's cells, runs them through the
/// parallel engine, folds the results into `ctx`, and renders each
/// experiment (unwind-isolated, so one broken figure doesn't lose the
/// others). Returns the combined output and a list of failures.
fn run_experiments(
    ctx: &Ctx,
    exps: &[&Experiment],
    runner_cfg: RunnerConfig,
) -> (String, Vec<String>) {
    let mut failures = Vec::new();
    let mut cells = Vec::new();
    for e in exps {
        cells.extend((e.cells)(ctx));
    }
    if !cells.is_empty() {
        let runner = Runner::new(runner_cfg).unwrap_or_else(|e| {
            eprintln!("cannot open --cache-dir: {e}");
            std::process::exit(2);
        });
        let sweep = runner.run(cells);
        eprintln!("[experiments] {}", sweep.summary());
        let engine = dice_sim::engine_counters();
        if engine.events_scheduled > 0 {
            eprintln!(
                "[experiments] engine: {} events scheduled, {} chained inline, {} wheel cascades",
                engine.events_scheduled, engine.events_chained, engine.wheel_cascades
            );
        }
        if ctx.verbose {
            let mut reg = MetricRegistry::new();
            sweep.register(&mut reg);
            let h = &sweep.cell_wall_ms;
            eprintln!(
                "[experiments] cell wall time: p50 {} ms, p95 {} ms, max {} ms",
                h.quantile(0.5),
                h.quantile(0.95),
                h.max()
            );
        }
        for ((tag, wl), outcome) in &sweep.outcomes {
            match outcome {
                CellOutcome::Completed { .. } => {}
                CellOutcome::Failed { error } => {
                    failures.push(format!("cell {tag}/{wl}: {error}"));
                }
                CellOutcome::TimedOut { budget } => {
                    failures.push(format!(
                        "cell {tag}/{wl}: timed out after {:.1}s",
                        budget.as_secs_f64()
                    ));
                }
            }
        }
        ctx.absorb(&sweep);
    }
    let mut parts = Vec::new();
    for e in exps {
        match catch_unwind(AssertUnwindSafe(|| (e.render)(ctx))) {
            Ok(text) => parts.push(text),
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_owned()))
                    .unwrap_or_else(|| "non-string panic payload".to_owned());
                failures.push(format!("{}: {msg}", e.id));
                parts.push(format!("{}: FAILED — {msg}", e.id));
            }
        }
    }
    let out =
        parts.join("\n\n================================================================\n\n");
    (out, failures)
}

/// `--inject garbled-trace`: writes a trace file with a corrupted record
/// and verifies the loader reports a typed parse error with line context.
/// Exits 0 on detection, 1 if the corruption slips through.
fn garbled_trace_selftest(seed: u64) -> ! {
    let dir = std::env::temp_dir().join(format!("dice-inject-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("creating temp dir");
    let path = dir.join("garbled.trace");
    // One valid record, then a record whose address field is garbled.
    std::fs::write(&path, format!("# dice trace v1\n1 {seed:x} r\n2 zz w\n"))
        .expect("writing garbled trace");
    let outcome = dice_workloads::ReplaySource::from_file(&path);
    let _ = std::fs::remove_dir_all(&dir);
    match outcome {
        Err(e) => {
            eprintln!("[experiments] garbled trace detected: {e}");
            std::process::exit(0);
        }
        Ok(_) => {
            eprintln!("[experiments] FAULT NOT DETECTED: garbled trace parsed cleanly");
            std::process::exit(1);
        }
    }
}

/// `--inject poisoned-cache`: corrupts every entry in the persistent cache
/// directory — truncating odd-indexed files, garbling even ones — and
/// returns how many were poisoned. The subsequent sweep must treat each as
/// a miss and re-simulate.
fn poison_cache_entries(dir: &std::path::Path) -> usize {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "json"))
                .collect()
        })
        .unwrap_or_default();
    entries.sort();
    for (i, path) in entries.iter().enumerate() {
        let poison = if i % 2 == 0 {
            "this is not json".to_owned()
        } else {
            let text = std::fs::read_to_string(path).unwrap_or_default();
            // Truncate mid-document (entries are ASCII JSON; `get` guards
            // the boundary anyway).
            text.get(..text.len() / 2).unwrap_or("{").to_owned()
        };
        if let Err(e) = std::fs::write(path, poison) {
            eprintln!("[experiments] could not poison {}: {e}", path.display());
        }
    }
    entries.len()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ctx = Ctx::standard();
    let mut id: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut diagnostics = false;
    let mut runner_cfg = RunnerConfig::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--list" => {
                // The shared catalog: byte-identical to dice-serve's
                // /v1/experiments (asserted by tests on both sides).
                println!("{}", dice_bench::catalog_json().render());
                return;
            }
            "--scale" => {
                i += 1;
                ctx.scale = args[i].parse().expect("--scale N");
            }
            "--warmup" => {
                i += 1;
                ctx.warmup = args[i].parse().expect("--warmup N");
            }
            "--measure" => {
                i += 1;
                ctx.measure = args[i].parse().expect("--measure N");
            }
            "--seed" => {
                i += 1;
                ctx.seed = args[i].parse().expect("--seed N");
            }
            "--jobs" => {
                i += 1;
                runner_cfg.jobs = args[i].parse().expect("--jobs N");
                assert!(runner_cfg.jobs >= 1, "--jobs must be >= 1");
            }
            "--cache-dir" => {
                i += 1;
                runner_cfg.cache_dir = Some(PathBuf::from(args.get(i).expect("--cache-dir PATH")));
            }
            "--quiet" => ctx.verbose = false,
            "--audit" => {
                i += 1;
                ctx.audit_every = args[i].parse().expect("--audit N");
            }
            "--inject" => {
                i += 1;
                let name = args.get(i).expect("--inject KIND");
                let kind = dice_core::FaultKind::parse(name).unwrap_or_else(|| {
                    let names: Vec<_> =
                        dice_core::FaultKind::ALL.iter().map(|k| k.name()).collect();
                    eprintln!("unknown fault {name:?}; one of: {}", names.join(", "));
                    std::process::exit(2);
                });
                ctx.inject = Some(dice_core::FaultPlan::seeded(kind));
            }
            "--cell-timeout" => {
                i += 1;
                let secs: f64 = args[i].parse().expect("--cell-timeout SECONDS");
                assert!(secs > 0.0, "--cell-timeout must be positive");
                runner_cfg.cell_timeout = Some(std::time::Duration::from_secs_f64(secs));
            }
            "--retries" => {
                i += 1;
                runner_cfg.retries = args[i].parse().expect("--retries N");
            }
            "--diagnostics" => {
                diagnostics = true;
                ctx.obs.trace_level = TraceLevel::Decisions;
            }
            "--json" => {
                i += 1;
                json_path = Some(args.get(i).expect("--json PATH").clone());
            }
            "--trace" => {
                i += 1;
                trace_path = Some(args.get(i).expect("--trace PATH").clone());
                // 64k events ≈ a few MB of JSON; the ring keeps the newest.
                ctx.obs.trace_capacity = 65_536;
            }
            other => {
                assert!(id.is_none(), "unexpected argument {other}");
                id = Some(other.to_owned());
            }
        }
        i += 1;
    }
    runner_cfg.verbose = ctx.verbose;
    // Two fault kinds live outside the simulator: garbled-trace is a
    // self-test of the trace parser, and poisoned-cache corrupts the
    // persistent cache on disk before the sweep (the runner must then
    // detect every poisoned entry and degrade it to a miss).
    match ctx.inject {
        Some(plan) if plan.kind == dice_core::FaultKind::GarbledTrace => {
            garbled_trace_selftest(plan.seed);
        }
        Some(plan) if plan.kind == dice_core::FaultKind::PoisonedCache => {
            let Some(dir) = &runner_cfg.cache_dir else {
                eprintln!("--inject poisoned-cache needs --cache-dir to poison");
                std::process::exit(2);
            };
            let n = poison_cache_entries(dir);
            eprintln!(
                "[experiments] poisoned {n} cache entr{} under {}",
                if n == 1 { "y" } else { "ies" },
                dir.display()
            );
            // The fault lives on disk, not in the simulator; clear the
            // plan so cell keys match the clean run's (otherwise the
            // poisoned entries would never even be probed).
            ctx.inject = None;
        }
        _ => {}
    }
    let id = id.unwrap_or_else(|| "all".to_owned());
    // Fail on an unwritable output path now, not after a long run.
    for path in [&json_path, &trace_path].into_iter().flatten() {
        if let Err(e) = std::fs::write(path, "") {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        }
    }
    let started = std::time::Instant::now();
    let (out, failures) = match id.as_str() {
        "all" => run_experiments(&ctx, &EXPERIMENTS.iter().collect::<Vec<_>>(), runner_cfg),
        other if other.starts_with("inspect=") => {
            // Developer path: four runs, serial, nothing to parallelize.
            (inspect(&ctx, other.trim_start_matches("inspect=")), vec![])
        }
        other => match EXPERIMENTS.iter().find(|e| e.id == other) {
            Some(e) => run_experiments(&ctx, &[e], runner_cfg),
            None => {
                eprintln!(
                    "unknown experiment '{other}'; try fig1f fig4 fig7 fig10 fig11 fig12 \
                     fig13 fig14 fig15 tab4 tab5 tab6 tab7 tab8 cip ingest all"
                );
                std::process::exit(2);
            }
        },
    };
    println!("{out}");
    if diagnostics {
        println!("\n================================================================\n");
        println!("{}", render_diagnostics(&ctx));
    }
    if let Some(path) = json_path {
        std::fs::write(&path, json_dump(&ctx, &id).render()).expect("writing --json output");
        eprintln!(
            "[experiments] wrote {} run reports to {path}",
            ctx.cached_runs()
        );
    }
    if let Some(path) = trace_path {
        std::fs::write(&path, trace_dump(&ctx).render()).expect("writing --trace output");
        eprintln!("[experiments] wrote Chrome trace to {path} (open in ui.perfetto.dev)");
    }
    eprintln!(
        "[experiments] {id} done in {:.1}s (scale 1/{}, {}+{} records/core)",
        started.elapsed().as_secs_f64(),
        ctx.scale,
        ctx.warmup,
        ctx.measure
    );
    if !failures.is_empty() {
        eprintln!("[experiments] {} failure(s):", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::{render_diagnostics, EXPERIMENTS};
    use dice_bench::{Ctx, EXPERIMENT_CATALOG};
    use dice_obs::{register_counters, MetricRegistry, TraceLevel};
    use dice_sim::WorkloadSet;
    use dice_workloads::spec_table;

    /// The dispatch table and the shared catalog must agree exactly —
    /// same ids, same order — so `--list` / `/v1/experiments` can never
    /// drift from what the binary actually runs.
    #[test]
    fn dispatch_table_matches_shared_catalog() {
        let dispatch: Vec<&str> = EXPERIMENTS.iter().map(|e| e.id).collect();
        let catalog: Vec<&str> = EXPERIMENT_CATALOG.iter().map(|e| e.id).collect();
        assert_eq!(dispatch, catalog);
    }

    /// `--diagnostics` output must agree with the counters every other
    /// consumer reads: the CIP sweep's `cip_accuracy`/`cip_predictions`
    /// and the registry counters a diag snapshot exports.
    #[test]
    fn diagnostics_cross_check_report_and_registry_counters() {
        let mut ctx = Ctx::quick();
        ctx.obs.trace_level = TraceLevel::Decisions;
        let spec = spec_table()
            .into_iter()
            .find(|w| w.name == "mcf")
            .expect("mcf is in the spec table");
        let wl = WorkloadSet::rate(spec, ctx.seed);
        let r = ctx.dice(&wl);
        let diag = r.diag.expect("Decisions-level run reports diagnostics");
        let d = diag.decisions;

        // Read-time confusion matrix vs the predictor's own counters.
        assert!(d.read_predictions() > 0, "mcf must score CIP predictions");
        assert_eq!(d.read_predictions(), r.cip_predictions);
        assert!((d.read_accuracy() - r.cip_accuracy).abs() < 1e-12);
        // Second probes attributed by path vs the flat L4 counter. The
        // diag covers the whole run, the report's L4 stats only the
        // measured window, so whole-run attribution must dominate.
        assert!(d.second_probe_reads + d.second_probe_writes >= r.l4.second_probes);
        // The same fields exported as registry counters round-trip.
        let mut reg = MetricRegistry::new();
        register_counters(&mut reg, "diag_", &d);
        assert_eq!(
            reg.counter_value("diag_cip_read_bai_bai"),
            Some(d.cip_read_bai_bai)
        );
        assert_eq!(reg.counter_value("diag_bytes_moved"), Some(d.bytes_moved));

        // And the rendered table carries the cross-checked numbers.
        let table = render_diagnostics(&ctx);
        assert!(table.contains("dice36/"));
        assert!(table.contains(&format!("{:.1}%", 100.0 * d.read_accuracy())));
        assert!(table.contains(&d.cip_read_bai_bai.to_string()));
    }

    /// Off-level runs carry no diagnostics and the renderer says so.
    #[test]
    fn diagnostics_renderer_reports_absence_at_trace_off() {
        let ctx = Ctx::quick();
        let text = render_diagnostics(&ctx);
        assert!(text.contains("no completed run"));
    }
}
