//! Workload lists in the paper's presentation order.

use dice_sim::WorkloadSet;
use dice_workloads::{mix_table, nonmem_table, spec_table, WorkloadSpec};

/// Grouping used for the paper's summary columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Group {
    /// 16 SPEC rate workloads.
    Rate,
    /// 4 mixed workloads.
    Mix,
    /// 6 GAP workloads.
    Gap,
}

/// The 26 memory-intensive workload sets (16 RATE, 4 MIX, 6 GAP) in the
/// order the figures present them, with their group labels.
#[must_use]
pub fn all26(seed: u64) -> Vec<(Group, WorkloadSet)> {
    let table = spec_table();
    let by_name = |n: &str| -> WorkloadSpec {
        table
            .iter()
            .find(|w| w.name == n)
            .expect("known workload")
            .clone()
    };

    let mut out = Vec::with_capacity(26);
    for w in table
        .iter()
        .filter(|w| w.suite == dice_workloads::Suite::SpecRate)
    {
        out.push((Group::Rate, WorkloadSet::rate(w.clone(), seed)));
    }
    for (name, members) in mix_table() {
        let specs = members.iter().map(|m| by_name(m)).collect();
        out.push((Group::Mix, WorkloadSet::mix(name, specs, seed)));
    }
    for w in table
        .iter()
        .filter(|w| w.suite == dice_workloads::Suite::Gap)
    {
        out.push((Group::Gap, WorkloadSet::rate(w.clone(), seed)));
    }
    out
}

/// The 13 non-memory-intensive workloads (Figure 13).
#[must_use]
pub fn nonmem(seed: u64) -> Vec<WorkloadSet> {
    nonmem_table()
        .into_iter()
        .map(|w| WorkloadSet::rate(w, seed))
        .collect()
}

/// Group-wise and overall geometric means in the paper's reporting order:
/// `(RATE, MIX, GAP, ALL26)`.
#[must_use]
pub fn group_geomeans(groups: &[Group], values: &[f64]) -> (f64, f64, f64, f64) {
    let pick = |g: Group| -> Vec<f64> {
        groups
            .iter()
            .zip(values)
            .filter(|(gg, _)| **gg == g)
            .map(|(_, v)| *v)
            .collect()
    };
    let gm = dice_sim::geomean;
    (
        gm(&pick(Group::Rate)),
        gm(&pick(Group::Mix)),
        gm(&pick(Group::Gap)),
        gm(values),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all26_has_26_entries_in_order() {
        let w = all26(1);
        assert_eq!(w.len(), 26);
        assert_eq!(w.iter().filter(|(g, _)| *g == Group::Rate).count(), 16);
        assert_eq!(w.iter().filter(|(g, _)| *g == Group::Mix).count(), 4);
        assert_eq!(w.iter().filter(|(g, _)| *g == Group::Gap).count(), 6);
        assert_eq!(w[0].1.name, "mcf");
        assert_eq!(w[16].1.name, "mix1");
        assert_eq!(w[20].1.name, "bc_twi");
        assert_eq!(w[21].1.name, "bc_web");
    }

    #[test]
    fn nonmem_has_13() {
        assert_eq!(nonmem(1).len(), 13);
    }

    #[test]
    fn geomeans_group_correctly() {
        let groups = [Group::Rate, Group::Mix, Group::Gap, Group::Gap];
        let vals = [2.0, 3.0, 4.0, 1.0];
        let (r, m, g, all) = group_geomeans(&groups, &vals);
        assert!((r - 2.0).abs() < 1e-12);
        assert!((m - 3.0).abs() < 1e-12);
        assert!((g - 2.0).abs() < 1e-12);
        assert!((all - (24.0f64).powf(0.25)).abs() < 1e-12);
    }
}
