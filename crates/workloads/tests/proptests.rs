//! Property-based tests for the workload layer: determinism, bounds and
//! calibration-invariants across the whole workload table.

use dice_core::SizeInfo;
use dice_workloads::{
    line_data, mix_table, nonmem_table, spec_table, DataModel, PageClass, TraceGen, ValueProfile,
};
use proptest::prelude::*;

fn arb_spec_index() -> impl Strategy<Value = usize> {
    0..spec_table().len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn traces_are_deterministic_per_seed(idx in arb_spec_index(), seed in any::<u64>(), core in 0u32..8) {
        let spec = spec_table().swap_remove(idx);
        let mut a = TraceGen::with_scale(&spec, core, seed, 256);
        let mut b = TraceGen::with_scale(&spec, core, seed, 256);
        for _ in 0..200 {
            prop_assert_eq!(a.next_record(), b.next_record());
        }
    }

    #[test]
    fn records_stay_in_their_region(idx in arb_spec_index(), seed in any::<u64>(), core in 0u32..8) {
        let spec = spec_table().swap_remove(idx);
        let mut g = TraceGen::with_scale(&spec, core, seed, 256);
        for _ in 0..500 {
            let r = g.next_record();
            prop_assert_eq!(r.line >> 34, u64::from(core), "line escaped its core region");
        }
    }

    #[test]
    fn data_model_sizes_are_valid(idx in arb_spec_index(), line in any::<u64>()) {
        let line = line >> 16; // stay in a plausible range
        let spec = spec_table().swap_remove(idx);
        let mut m = DataModel::new(&spec, 1);
        let s = m.single_size(line);
        prop_assert!((1..=64).contains(&s), "single size {s}");
        let p = m.pair_size(line);
        prop_assert!((2..=200).contains(&p), "pair size {p}");
        prop_assert!(p <= 2 * 64 || p == 200, "pair size cap");
        // Pair is never better than two bytes and never worse than concat.
        let concat = m.single_size(line & !1) + m.single_size(line | 1);
        prop_assert!(p <= concat, "pair {p} worse than concat {concat}");
    }

    #[test]
    fn size_kernels_match_materialized_over_all_page_classes(
        seed in any::<u64>(),
        line in 0u64..1_000_000,
    ) {
        // The size-only kernels must equal the materializing compressors on
        // every value class the workload generators can synthesize — these
        // bytes are exactly what the simulator's hot path sizes up.
        let even = line & !1;
        for class in PageClass::ALL {
            let a = line_data(seed, class, even);
            let b = line_data(seed, class, even | 1);
            prop_assert_eq!(
                dice_compress::compressed_size(&a),
                dice_compress::compress(&a).size(),
                "single size kernel diverged for {:?}",
                class
            );
            prop_assert_eq!(
                dice_compress::pair_compressed_size(&a, &b),
                dice_compress::compress_pair(&a, &b).total_size(),
                "pair size kernel diverged for {:?}",
                class
            );
        }
    }

    #[test]
    fn line_data_matches_cached_size(idx in arb_spec_index(), line in 0u64..1_000_000) {
        let spec = spec_table().swap_remove(idx);
        let mut m = DataModel::new(&spec, 7);
        let expected = dice_compress::compressed_size(&m.line_data(line)) as u32;
        prop_assert_eq!(m.single_size(line), expected);
        prop_assert_eq!(m.single_size(line), expected, "memoized value differs");
    }

    #[test]
    fn every_class_round_trips_through_compression(line in any::<u64>(), seed in any::<u64>()) {
        for class in PageClass::ALL {
            let data = line_data(seed, class, line >> 8);
            let c = dice_compress::compress(&data);
            prop_assert_eq!(dice_compress::decompress(&c), data, "{:?}", class);
        }
    }

    #[test]
    fn profile_class_assignment_is_total(z in 0u32..50, si in 0u32..50, f in 0u32..50, page in any::<u64>()) {
        let p = ValueProfile {
            zero: z,
            small_int: si,
            strided: 0,
            pointer: 0,
            half16: 0,
            loose16: 0,
            float: f,
            random: 0,
        };
        // Never panics, even for all-zero weights.
        let _ = p.class_of(3, page);
    }
}

#[test]
fn whole_table_has_consistent_calibration_columns() {
    for w in spec_table().iter().chain(nonmem_table().iter()) {
        assert!(w.table3_mpki > 0.0, "{}", w.name);
        assert!(w.gap_mean > 0.0, "{}", w.name);
        assert!(w.footprint_bytes >= 1 << 20, "{}", w.name);
        assert!((0.0..=1.0).contains(&w.write_fraction), "{}", w.name);
        assert!((0.0..=1.0).contains(&w.hot_prob), "{}", w.name);
        assert!((0.0..=1.0).contains(&w.reuse_prob), "{}", w.name);
        assert!(w.seq_run >= 1.0, "{}", w.name);
        assert!(w.hot_fraction > 0.0 && w.hot_fraction < 1.0, "{}", w.name);
    }
}

#[test]
fn higher_mpki_means_denser_access_stream() {
    let t = spec_table();
    for pair in t.windows(2) {
        if pair[0].suite == pair[1].suite && pair[0].table3_mpki > pair[1].table3_mpki {
            assert!(
                pair[0].gap_mean <= pair[1].gap_mean,
                "{} vs {}",
                pair[0].name,
                pair[1].name
            );
        }
    }
}

#[test]
fn mixes_are_distinct_and_well_formed() {
    let mixes = mix_table();
    assert_eq!(mixes.len(), 4);
    for (name, members) in &mixes {
        assert!(name.starts_with("mix"));
        let set: std::collections::HashSet<_> = members.iter().collect();
        assert_eq!(set.len(), 8, "{name} repeats a member");
    }
}
