//! Synthetic workload generators standing in for the paper's SPEC 2006 and
//! GAP benchmark slices.
//!
//! The original evaluation drives USIMM with PinPoints traces of real
//! binaries (Table 3: 16 memory-intensive SPEC benchmarks, 6 GAP graph
//! workloads on twitter/web graphs, 4 random mixes, plus 13 non-memory-
//! intensive SPEC programs). We cannot ship those traces, so each workload
//! is modeled by:
//!
//! * an **address-stream model** ([`TraceGen`]) — hot/cold working sets,
//!   sequential runs (spatial locality), optional Zipf page popularity for
//!   graph workloads, per-access instruction gaps — parameterized per
//!   workload to land near the paper's published L3 MPKI and footprint;
//! * a **value model** ([`ValueProfile`], [`DataModel`]) — pages are
//!   assigned value classes (zeros, small ints, strided ints, pointers,
//!   floats, random) whose synthesized bytes are *actually compressed* with
//!   the FPC+BDI hybrid, calibrated per workload against Figure 4's
//!   compressibility histogram. Compressibility is page-correlated, the
//!   property DICE's predictors exploit.
//!
//! Determinism: everything derives from explicit 64-bit seeds via SplitMix;
//! identical seeds yield identical traces and data.
//!
//! # Example
//!
//! ```
//! use dice_workloads::{spec_table, DataModel, TraceGen};
//!
//! let spec = spec_table().iter().find(|w| w.name == "mcf").unwrap().clone();
//! let mut gen = TraceGen::new(&spec, /* core */ 0, /* seed */ 42);
//! let rec = gen.next_record();
//! assert!(rec.gap > 0 || rec.gap == 0); // a (gap, line, write) record
//! let mut data = DataModel::new(&spec, 7);
//! let line = data.line_data(rec.line);
//! assert_eq!(line.len(), 64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod data;
mod rng;
mod source;
mod spec;
mod trace;
mod value;

pub use data::{DataModel, MixDataModel, PAIR_SIZE_SATURATED};
pub use rng::SplitMix64;
pub use source::{load_trace, save_trace, RecordSource, ReplaySource, TraceSource};
pub use spec::{
    mix_table, nonmem_table, spec_table, Suite, WorkloadSpec, LINES_PER_PAGE, PAGE_BYTES,
};
pub use trace::{TraceGen, TraceRecord};
pub use value::{line_data, PageClass, ValueProfile};

/// A line address (byte address / 64), shared with `dice-core`.
pub type LineAddr = u64;
