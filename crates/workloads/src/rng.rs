//! Deterministic pseudo-random number generation.
//!
//! Everything in the workload layer must be bit-reproducible from a seed,
//! across platforms and crate versions, so we implement SplitMix64 directly
//! instead of depending on an external generator whose stream might change.

/// SplitMix64: a tiny, high-quality, splittable PRNG (Steele et al., 2014).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. Returns 0 for `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            // Multiply-shift range reduction (Lemire); bias is negligible
            // for simulation purposes.
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }
    }

    /// Uniform f64 in [0, 1).
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Geometric-ish draw with the given mean (≥ 0): an exponential sample
    /// rounded down, cheap and adequate for inter-arrival gaps.
    pub fn geometric(&mut self, mean: f64) -> u64 {
        if mean <= 0.0 {
            return 0;
        }
        let u = self.unit().max(1e-12);
        (-mean * u.ln()) as u64
    }

    /// A stateless hash of `x` (useful for per-page derivations).
    #[must_use]
    pub fn hash(x: u64) -> u64 {
        let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(3);
        for _ in 0..10_000 {
            assert!(r.below(17) < 17);
        }
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn unit_in_range_and_roughly_uniform() {
        let mut r = SplitMix64::new(4);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn geometric_mean_is_close() {
        let mut r = SplitMix64::new(5);
        let mean = 50.0;
        let total: u64 = (0..20_000).map(|_| r.geometric(mean)).sum();
        let got = total as f64 / 20_000.0;
        assert!((got - mean).abs() < 2.0, "mean {got}");
    }

    #[test]
    fn hash_is_stable_and_spreads() {
        assert_eq!(SplitMix64::hash(42), SplitMix64::hash(42));
        assert_ne!(SplitMix64::hash(1), SplitMix64::hash(2));
    }
}
