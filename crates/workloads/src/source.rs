//! Pluggable record sources: synthetic generators or recorded traces.
//!
//! The simulator consumes a [`RecordSource`] per core. The built-in
//! [`TraceGen`](crate::TraceGen) synthesizes streams, but users with real
//! post-L2 traces (e.g. from a binary-instrumentation tool) can feed them
//! through [`ReplaySource`] and the text format in [`trace_file`](self).

use std::io::{BufRead, Write};
use std::path::Path;

use dice_obs::{DiceError, DiceResult};

use crate::trace::{TraceGen, TraceRecord};
use crate::LineAddr;

/// A stream of memory-access records for one core.
pub trait RecordSource {
    /// Produces the next access.
    fn next_record(&mut self) -> TraceRecord;

    /// Number of distinct lines the stream may touch (used to bound
    /// prefetcher reach); `u64::MAX` when unknown.
    fn footprint_lines(&self) -> u64;
}

/// A multi-stream recorded trace that can hand out an independent,
/// bounded-memory [`RecordSource`] per simulated core.
///
/// This is the seam between the simulator and any trace container: the
/// sim asks for one stream per core and never sees the storage format.
/// `dice-ingest`'s `DtfTraceSource` implements it over `.dtf` files with
/// one frame in flight per stream; an in-memory implementation can wrap
/// [`ReplaySource`]s. Implementations map a core id outside `cores()`
/// onto an existing stream (conventionally `core % cores()`), so a trace
/// recorded on fewer cores than the simulated system still drives every
/// core deterministically.
pub trait TraceSource {
    /// Independent streams the trace was recorded with.
    fn cores(&self) -> u32;

    /// Opens a fresh stream for simulated core `core`. Streams loop at
    /// end of trace (the [`ReplaySource`] convention: simulation windows
    /// often exceed trace length).
    ///
    /// # Errors
    ///
    /// Returns [`DiceError::Config`] when the mapped stream holds no
    /// records, or any error of the backing store.
    fn open_core(&self, core: u32) -> DiceResult<Box<dyn RecordSource + Send>>;

    /// Hash of the backing bytes; result caches key on it so cached cells
    /// can never outlive a changed trace file.
    fn content_hash(&self) -> u64;

    /// Total records across all streams.
    fn records(&self) -> u64;
}

impl RecordSource for TraceGen {
    fn next_record(&mut self) -> TraceRecord {
        TraceGen::next_record(self)
    }

    fn footprint_lines(&self) -> u64 {
        TraceGen::footprint_lines(self)
    }
}

/// Replays a recorded trace, looping when it runs out (simulation windows
/// often exceed trace length; looping preserves the access distribution).
#[derive(Debug, Clone)]
pub struct ReplaySource {
    records: Vec<TraceRecord>,
    pos: usize,
    footprint: u64,
}

impl ReplaySource {
    /// Wraps a recorded trace.
    ///
    /// # Panics
    ///
    /// Panics if `records` is empty; [`try_new`](Self::try_new) is the
    /// non-panicking variant for records of unvetted provenance.
    #[must_use]
    pub fn new(records: Vec<TraceRecord>) -> Self {
        match Self::try_new(records) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// Wraps a recorded trace, rejecting an empty record list as a typed
    /// [`DiceError::Config`] (a replay source must produce records
    /// forever, so there is no sensible empty behavior).
    ///
    /// # Errors
    ///
    /// Returns [`DiceError::Config`] when `records` is empty.
    pub fn try_new(records: Vec<TraceRecord>) -> DiceResult<Self> {
        if records.is_empty() {
            return Err(DiceError::Config {
                field: "replay records".to_owned(),
                reason: "a replay source needs at least one record".to_owned(),
            });
        }
        let max = records.iter().map(|r| r.line).max().unwrap_or(0);
        let min = records.iter().map(|r| r.line).min().unwrap_or(0);
        Ok(Self {
            records,
            pos: 0,
            footprint: max - min + 1,
        })
    }

    /// Loads a trace from the text format written by [`save_trace`].
    ///
    /// # Errors
    ///
    /// Returns [`DiceError::Io`] on I/O failure, [`DiceError::TraceParse`]
    /// on malformed records, or [`DiceError::Config`] when the file holds
    /// no records at all.
    pub fn from_file(path: impl AsRef<Path>) -> DiceResult<Self> {
        Self::try_new(load_trace(path)?)
    }

    /// Number of records before the stream loops.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the trace holds no records (never: construction forbids
    /// it; provided for API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

impl RecordSource for ReplaySource {
    fn next_record(&mut self) -> TraceRecord {
        let r = self.records[self.pos];
        self.pos = (self.pos + 1) % self.records.len();
        r
    }

    fn footprint_lines(&self) -> u64 {
        self.footprint
    }
}

/// Writes records as whitespace-separated text: `gap line_hex rw` per line,
/// with `#`-prefixed comments allowed.
///
/// # Errors
///
/// Returns [`DiceError::Io`] wrapping any underlying I/O error.
pub fn save_trace(path: impl AsRef<Path>, records: &[TraceRecord]) -> DiceResult<()> {
    let path = path.as_ref();
    let ioerr = |e: &std::io::Error| DiceError::io(format!("write trace {}", path.display()), e);
    let mut f = std::io::BufWriter::new(std::fs::File::create(path).map_err(|e| ioerr(&e))?);
    writeln!(
        f,
        "# dice trace v1: <instruction-gap> <line-address-hex> <r|w>"
    )
    .map_err(|e| ioerr(&e))?;
    for r in records {
        writeln!(
            f,
            "{} {:x} {}",
            r.gap,
            r.line,
            if r.write { 'w' } else { 'r' }
        )
        .map_err(|e| ioerr(&e))?;
    }
    f.flush().map_err(|e| ioerr(&e))
}

/// Reads the format written by [`save_trace`].
///
/// # Errors
///
/// Returns [`DiceError::Io`] on I/O failure or [`DiceError::TraceParse`]
/// — carrying the path and 1-based line number — on malformed, truncated
/// or garbled records.
pub fn load_trace(path: impl AsRef<Path>) -> DiceResult<Vec<TraceRecord>> {
    let path = path.as_ref();
    let shown = path.display().to_string();
    let f = std::io::BufReader::new(
        std::fs::File::open(path).map_err(|e| DiceError::io(format!("open trace {shown}"), &e))?,
    );
    let bad = |no: usize, reason: String| DiceError::TraceParse {
        path: shown.clone(),
        line: no as u64 + 1,
        reason,
    };
    let mut out = Vec::new();
    for (no, line) in f.lines().enumerate() {
        let line = line.map_err(|e| DiceError::io(format!("read trace {shown}"), &e))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let (Some(g), Some(l), Some(w)) = (it.next(), it.next(), it.next()) else {
            let got = line.split_whitespace().count();
            return Err(bad(no, format!("expected 3 fields, got {got}")));
        };
        let gap = g
            .parse()
            .map_err(|e| bad(no, format!("bad gap {g:?}: {e}")))?;
        let addr: LineAddr = LineAddr::from_str_radix(l, 16)
            .map_err(|e| bad(no, format!("bad address {l:?}: {e}")))?;
        let write = match w {
            "r" => false,
            "w" => true,
            other => return Err(bad(no, format!("bad r/w flag {other:?}"))),
        };
        out.push(TraceRecord {
            gap,
            line: addr,
            write,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::spec_table;

    #[test]
    fn replay_loops() {
        let recs = vec![
            TraceRecord {
                gap: 1,
                line: 10,
                write: false,
            },
            TraceRecord {
                gap: 2,
                line: 20,
                write: true,
            },
        ];
        let mut s = ReplaySource::new(recs.clone());
        assert_eq!(s.next_record(), recs[0]);
        assert_eq!(s.next_record(), recs[1]);
        assert_eq!(s.next_record(), recs[0]);
        assert_eq!(s.footprint_lines(), 11);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("dice-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t1.trace");
        let recs = vec![
            TraceRecord {
                gap: 0,
                line: 0xabc,
                write: true,
            },
            TraceRecord {
                gap: 99,
                line: u64::MAX >> 8,
                write: false,
            },
        ];
        save_trace(&path, &recs).unwrap();
        assert_eq!(load_trace(&path).unwrap(), recs);
    }

    #[test]
    fn loader_rejects_garbage() {
        let dir = std::env::temp_dir().join("dice-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.trace");
        std::fs::write(&path, "1 zz r\n").unwrap();
        assert!(load_trace(&path).is_err());
        std::fs::write(&path, "1 10 x\n").unwrap();
        assert!(load_trace(&path).is_err());
        std::fs::write(&path, "# only comments\n\n").unwrap();
        assert!(load_trace(&path).unwrap().is_empty());
    }

    /// Malformed-input regression: every corruption mode returns a typed
    /// parse error carrying the path and the 1-based offending line.
    #[test]
    fn malformed_records_report_line_context() {
        let dir = std::env::temp_dir().join("dice-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ctx.trace");
        let cases: [(&str, u64, &str); 5] = [
            ("# ok\n5 1f r\n7 2a\n", 3, "truncated record"),
            ("x 1f r\n", 1, "non-numeric gap"),
            ("5 0xzz r\n", 1, "garbled address"),
            ("5 1f rw\n", 1, "bad access flag"),
            (
                "5 1f r\n\n# c\n5 1f\n",
                4,
                "line numbers count comments and blanks",
            ),
        ];
        for (text, want_line, label) in cases {
            std::fs::write(&path, text).unwrap();
            match load_trace(&path) {
                Err(dice_obs::DiceError::TraceParse { path: p, line, .. }) => {
                    assert!(p.ends_with("ctx.trace"), "{label}: path {p}");
                    assert_eq!(line, want_line, "{label}");
                }
                other => panic!("{label}: expected TraceParse, got {other:?}"),
            }
        }
        // Extra fields beyond the three parsed ones are tolerated only if
        // the first three parse; `5 1f r q` has a valid prefix, so the
        // fourth field is ignored by the split — verify that explicitly.
        std::fs::write(&path, "5 1f r ignored\n").unwrap();
        assert_eq!(load_trace(&path).unwrap().len(), 1);
    }

    #[test]
    fn missing_file_is_a_typed_io_error() {
        let err = load_trace("/nonexistent/dice.trace").unwrap_err();
        assert_eq!(err.class(), dice_obs::ErrorClass::Io);
        assert!(err.to_string().contains("/nonexistent/dice.trace"));
    }

    #[test]
    fn empty_trace_file_is_a_typed_config_error() {
        let dir = std::env::temp_dir().join("dice-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.trace");
        std::fs::write(&path, "# header only\n").unwrap();
        let err = ReplaySource::from_file(&path).unwrap_err();
        assert_eq!(err.class(), dice_obs::ErrorClass::Config);
        assert!(ReplaySource::try_new(vec![]).is_err());
    }

    #[test]
    fn tracegen_implements_source() {
        let spec = spec_table().into_iter().next().unwrap();
        let mut g = TraceGen::with_scale(&spec, 0, 1, 64);
        let r = RecordSource::next_record(&mut g);
        assert!(RecordSource::footprint_lines(&g) > 0);
        let _ = r;
    }

    #[test]
    fn recorded_generator_replays_identically() {
        let spec = spec_table().into_iter().next().unwrap();
        let mut g = TraceGen::with_scale(&spec, 0, 5, 64);
        let recs: Vec<TraceRecord> = (0..100).map(|_| g.next_record()).collect();
        let mut replay = ReplaySource::new(recs.clone());
        for r in &recs {
            assert_eq!(replay.next_record(), *r);
        }
    }
}
