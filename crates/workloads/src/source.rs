//! Pluggable record sources: synthetic generators or recorded traces.
//!
//! The simulator consumes a [`RecordSource`] per core. The built-in
//! [`TraceGen`](crate::TraceGen) synthesizes streams, but users with real
//! post-L2 traces (e.g. from a binary-instrumentation tool) can feed them
//! through [`ReplaySource`] and the text format in [`trace_file`](self).

use std::io::{BufRead, Write};
use std::path::Path;

use crate::trace::{TraceGen, TraceRecord};
use crate::LineAddr;

/// A stream of memory-access records for one core.
pub trait RecordSource {
    /// Produces the next access.
    fn next_record(&mut self) -> TraceRecord;

    /// Number of distinct lines the stream may touch (used to bound
    /// prefetcher reach); `u64::MAX` when unknown.
    fn footprint_lines(&self) -> u64;
}

impl RecordSource for TraceGen {
    fn next_record(&mut self) -> TraceRecord {
        TraceGen::next_record(self)
    }

    fn footprint_lines(&self) -> u64 {
        TraceGen::footprint_lines(self)
    }
}

/// Replays a recorded trace, looping when it runs out (simulation windows
/// often exceed trace length; looping preserves the access distribution).
#[derive(Debug, Clone)]
pub struct ReplaySource {
    records: Vec<TraceRecord>,
    pos: usize,
    footprint: u64,
}

impl ReplaySource {
    /// Wraps a recorded trace.
    ///
    /// # Panics
    ///
    /// Panics if `records` is empty.
    #[must_use]
    pub fn new(records: Vec<TraceRecord>) -> Self {
        assert!(
            !records.is_empty(),
            "a replay source needs at least one record"
        );
        let max = records.iter().map(|r| r.line).max().unwrap_or(0);
        let min = records.iter().map(|r| r.line).min().unwrap_or(0);
        Self {
            records,
            pos: 0,
            footprint: max - min + 1,
        }
    }

    /// Loads a trace from the text format written by [`save_trace`].
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure or malformed lines.
    pub fn from_file(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(Self::new(load_trace(path)?))
    }

    /// Number of records before the stream loops.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the trace holds no records (never: construction forbids
    /// it; provided for API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

impl RecordSource for ReplaySource {
    fn next_record(&mut self) -> TraceRecord {
        let r = self.records[self.pos];
        self.pos = (self.pos + 1) % self.records.len();
        r
    }

    fn footprint_lines(&self) -> u64 {
        self.footprint
    }
}

/// Writes records as whitespace-separated text: `gap line_hex rw` per line,
/// with `#`-prefixed comments allowed.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn save_trace(path: impl AsRef<Path>, records: &[TraceRecord]) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(
        f,
        "# dice trace v1: <instruction-gap> <line-address-hex> <r|w>"
    )?;
    for r in records {
        writeln!(
            f,
            "{} {:x} {}",
            r.gap,
            r.line,
            if r.write { 'w' } else { 'r' }
        )?;
    }
    Ok(())
}

/// Reads the format written by [`save_trace`].
///
/// # Errors
///
/// Returns an error on I/O failure or malformed lines.
pub fn load_trace(path: impl AsRef<Path>) -> std::io::Result<Vec<TraceRecord>> {
    let f = std::io::BufReader::new(std::fs::File::open(path)?);
    let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
    let mut out = Vec::new();
    for (no, line) in f.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let (Some(g), Some(l), Some(w)) = (it.next(), it.next(), it.next()) else {
            return Err(bad(format!("line {}: expected 3 fields", no + 1)));
        };
        let gap = g
            .parse()
            .map_err(|e| bad(format!("line {}: bad gap: {e}", no + 1)))?;
        let addr: LineAddr = LineAddr::from_str_radix(l, 16)
            .map_err(|e| bad(format!("line {}: bad address: {e}", no + 1)))?;
        let write = match w {
            "r" => false,
            "w" => true,
            other => return Err(bad(format!("line {}: bad r/w flag {other:?}", no + 1))),
        };
        out.push(TraceRecord {
            gap,
            line: addr,
            write,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::spec_table;

    #[test]
    fn replay_loops() {
        let recs = vec![
            TraceRecord {
                gap: 1,
                line: 10,
                write: false,
            },
            TraceRecord {
                gap: 2,
                line: 20,
                write: true,
            },
        ];
        let mut s = ReplaySource::new(recs.clone());
        assert_eq!(s.next_record(), recs[0]);
        assert_eq!(s.next_record(), recs[1]);
        assert_eq!(s.next_record(), recs[0]);
        assert_eq!(s.footprint_lines(), 11);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("dice-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t1.trace");
        let recs = vec![
            TraceRecord {
                gap: 0,
                line: 0xabc,
                write: true,
            },
            TraceRecord {
                gap: 99,
                line: u64::MAX >> 8,
                write: false,
            },
        ];
        save_trace(&path, &recs).unwrap();
        assert_eq!(load_trace(&path).unwrap(), recs);
    }

    #[test]
    fn loader_rejects_garbage() {
        let dir = std::env::temp_dir().join("dice-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.trace");
        std::fs::write(&path, "1 zz r\n").unwrap();
        assert!(load_trace(&path).is_err());
        std::fs::write(&path, "1 10 x\n").unwrap();
        assert!(load_trace(&path).is_err());
        std::fs::write(&path, "# only comments\n\n").unwrap();
        assert!(load_trace(&path).unwrap().is_empty());
    }

    #[test]
    fn tracegen_implements_source() {
        let spec = spec_table().into_iter().next().unwrap();
        let mut g = TraceGen::with_scale(&spec, 0, 1, 64);
        let r = RecordSource::next_record(&mut g);
        assert!(RecordSource::footprint_lines(&g) > 0);
        let _ = r;
    }

    #[test]
    fn recorded_generator_replays_identically() {
        let spec = spec_table().into_iter().next().unwrap();
        let mut g = TraceGen::with_scale(&spec, 0, 5, 64);
        let recs: Vec<TraceRecord> = (0..100).map(|_| g.next_record()).collect();
        let mut replay = ReplaySource::new(recs.clone());
        for r in &recs {
            assert_eq!(replay.next_record(), *r);
        }
    }
}
