//! Value models: what bytes live at each address.
//!
//! Compressibility in real programs is strongly *page*-correlated (the LCP
//! observation §5.2 leans on): a page of floats stays floats, a page of
//! pointers stays pointers. We therefore assign each 4 KB page a
//! [`PageClass`] drawn from the workload's [`ValueProfile`] by a stable hash
//! of the page number, and synthesize line bytes deterministically from
//! `(class, line address)`. The classes are chosen so their FPC+BDI
//! outcomes span the paper's Figure 4 spectrum:
//!
//! | class      | typical single size | pairs share a base? |
//! |------------|---------------------|---------------------|
//! | `Zero`     | 1 B                 | trivially           |
//! | `SmallInt` | ~20–22 B            | yes (B4D1)          |
//! | `Strided`  | 20–36 B (B4D1/D2)   | yes                 |
//! | `Pointer`  | 16–24 B (B8D1/D2)   | yes                 |
//! | `Half16`   | 34–38 B             | yes (B2D1: 66 B)    |
//! | `Float`    | 64 B (incompressible) | no                |
//! | `Random`   | 64 B                | no                  |

use crate::rng::SplitMix64;
use crate::LineAddr;
use dice_compress::{LineData, LINE_BYTES};

/// The kind of data occupying a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageClass {
    /// Zero-filled (bss, freshly mapped, sparse matrices' empty regions).
    Zero,
    /// Small signed integers (counters, indices, booleans, enum tags).
    SmallInt,
    /// Monotone strided 32-bit values (array indices, offsets); the stride
    /// is derived per page.
    Strided,
    /// 64-bit pointers into a per-page arena.
    Pointer,
    /// 16-bit-ish values (shorts, unicode text, quantized data).
    Half16,
    /// Unclustered 15-bit values: FPC compresses a single line to ~38 B,
    /// but two such lines cannot share a BDI base, so a pair (76 B) never
    /// fits one TAD. Workloads rich in this class are the ones static BAI
    /// *hurts* (mcf, sphinx in Fig 7): spatial pairing halves their
    /// effective capacity. DICE's 36 B threshold routes them to TSI.
    Loose16,
    /// Floating-point data with high-entropy mantissas.
    Float,
    /// Uniformly random bytes (encrypted/compressed payloads).
    Random,
}

impl PageClass {
    /// All classes, in the order [`ValueProfile`] weights them.
    pub const ALL: [PageClass; 8] = [
        PageClass::Zero,
        PageClass::SmallInt,
        PageClass::Strided,
        PageClass::Pointer,
        PageClass::Half16,
        PageClass::Loose16,
        PageClass::Float,
        PageClass::Random,
    ];
}

/// Per-workload distribution over page classes (weights need not sum to
/// anything in particular; they are normalized internally).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValueProfile {
    /// Weight of zero pages.
    pub zero: u32,
    /// Weight of small-integer pages.
    pub small_int: u32,
    /// Weight of strided-integer pages.
    pub strided: u32,
    /// Weight of pointer pages.
    pub pointer: u32,
    /// Weight of halfword pages.
    pub half16: u32,
    /// Weight of loose 15-bit pages (single-compressible, pair-hostile).
    pub loose16: u32,
    /// Weight of float pages.
    pub float: u32,
    /// Weight of random pages.
    pub random: u32,
}

impl ValueProfile {
    /// A profile that makes (almost) every line incompressible.
    #[must_use]
    pub fn incompressible() -> Self {
        Self {
            zero: 0,
            small_int: 0,
            strided: 0,
            pointer: 0,
            half16: 0,
            loose16: 0,
            float: 60,
            random: 40,
        }
    }

    /// A highly compressible profile (graph-analytics-like).
    #[must_use]
    pub fn highly_compressible() -> Self {
        Self {
            zero: 25,
            small_int: 30,
            strided: 20,
            pointer: 15,
            half16: 5,
            loose16: 0,
            float: 3,
            random: 2,
        }
    }

    fn weights(&self) -> [u32; 8] {
        [
            self.zero,
            self.small_int,
            self.strided,
            self.pointer,
            self.half16,
            self.loose16,
            self.float,
            self.random,
        ]
    }

    /// The stable class of `page` under this profile for a given seed.
    #[must_use]
    pub fn class_of(&self, seed: u64, page: u64) -> PageClass {
        let w = self.weights();
        let total: u64 = w.iter().map(|&x| u64::from(x)).sum();
        if total == 0 {
            return PageClass::Random;
        }
        let h = SplitMix64::hash(seed ^ page.wrapping_mul(0xa076_1d64_78bd_642f));
        let mut pick = h % total;
        for (class, &weight) in PageClass::ALL.iter().zip(w.iter()) {
            let weight = u64::from(weight);
            if pick < weight {
                return *class;
            }
            pick -= weight;
        }
        PageClass::Random
    }
}

/// Synthesizes the 64 bytes at `line` for a page of class `class`.
///
/// Deterministic in `(seed, class, line)`. Lines within a page share bases
/// and strides, so spatially adjacent lines pair-compress the way real data
/// does.
#[must_use]
pub fn line_data(seed: u64, class: PageClass, line: LineAddr) -> LineData {
    let page = line / 64;
    let mut out = [0u8; LINE_BYTES];
    match class {
        PageClass::Zero => {}
        PageClass::SmallInt => {
            let mut r = SplitMix64::new(seed ^ SplitMix64::hash(line));
            for chunk in out.chunks_exact_mut(4) {
                let v = (r.below(256) as i32 - 128) as u32;
                chunk.copy_from_slice(&v.to_le_bytes());
            }
        }
        PageClass::Strided => {
            let h = SplitMix64::hash(seed ^ page);
            let base = (h as u32) & 0x0fff_ffff;
            let stride = 1 + ((h >> 32) as u32 % 900);
            let line_in_page = (line % 64) as u32;
            for (i, chunk) in out.chunks_exact_mut(4).enumerate() {
                let idx = line_in_page * 16 + i as u32;
                let v = base.wrapping_add(idx.wrapping_mul(stride));
                chunk.copy_from_slice(&v.to_le_bytes());
            }
        }
        PageClass::Pointer => {
            let h = SplitMix64::hash(seed ^ page ^ 0x5151);
            let arena = 0x7f00_0000_0000u64 | (u64::from(h as u32) << 8);
            let mut r = SplitMix64::new(seed ^ SplitMix64::hash(line ^ 0x9999));
            for chunk in out.chunks_exact_mut(8) {
                // Pointers span a 16 KB object: deltas fit B8D2 (24 B).
                let v = arena + r.below(2048) * 8;
                chunk.copy_from_slice(&v.to_le_bytes());
            }
        }
        PageClass::Half16 => {
            // Halfwords clustered within ±127 of a per-page base: B2D1
            // (34 B) singles, 66 B shared-base pairs — data that *only*
            // fits a TAD when the pair shares its base.
            let base = (SplitMix64::hash(seed ^ page ^ 0x1616) & 0x3f80) as u16;
            let mut r = SplitMix64::new(seed ^ SplitMix64::hash(line ^ 0x1616));
            for chunk in out.chunks_exact_mut(2) {
                let v = base + r.below(128) as u16;
                chunk.copy_from_slice(&v.to_le_bytes());
            }
        }
        PageClass::Loose16 => {
            // Seven full-entropy words + nine tiny words per line: FPC
            // packs this into exactly 39 B (7×35 + 9×7 = 308 bits), no BDI
            // encoding applies (the raw words share no base), so a single
            // line is "half-line-ish" but a pair (78 B) never fits one TAD.
            let mut r = SplitMix64::new(seed ^ SplitMix64::hash(line ^ 0x1055));
            let raw_mask: u16 = {
                // Choose 7 of 16 word positions pseudo-randomly.
                let mut m: u16 = 0;
                while m.count_ones() < 7 {
                    m |= 1 << r.below(16);
                }
                m
            };
            for (i, chunk) in out.chunks_exact_mut(4).enumerate() {
                let v = if raw_mask & (1 << i) != 0 {
                    // High-entropy word, kept away from compressible shapes.
                    (r.next_u64() as u32) | 0x4000_0100
                } else {
                    1 + r.below(7) as u32
                };
                chunk.copy_from_slice(&v.to_le_bytes());
            }
        }
        PageClass::Float => {
            let mut r = SplitMix64::new(seed ^ SplitMix64::hash(line ^ 0xf10a));
            for chunk in out.chunks_exact_mut(8) {
                // Doubles in [1, 2): fixed sign/exponent, random mantissa.
                let bits = 0x3ff0_0000_0000_0000u64 | (r.next_u64() >> 12);
                chunk.copy_from_slice(&bits.to_le_bytes());
            }
        }
        PageClass::Random => {
            let mut r = SplitMix64::new(seed ^ SplitMix64::hash(line ^ 0xdead));
            for chunk in out.chunks_exact_mut(8) {
                chunk.copy_from_slice(&r.next_u64().to_le_bytes());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dice_compress::{compressed_size, pair_compressed_size};

    #[test]
    fn class_assignment_is_stable() {
        let p = ValueProfile::highly_compressible();
        assert_eq!(p.class_of(1, 42), p.class_of(1, 42));
    }

    #[test]
    fn class_distribution_follows_weights() {
        let p = ValueProfile {
            zero: 50,
            small_int: 0,
            strided: 0,
            pointer: 0,
            half16: 0,
            loose16: 0,
            float: 0,
            random: 50,
        };
        let zeros = (0..10_000)
            .filter(|&pg| p.class_of(7, pg) == PageClass::Zero)
            .count();
        assert!((4_500..5_500).contains(&zeros), "zeros {zeros}");
    }

    #[test]
    fn line_data_is_deterministic() {
        for class in PageClass::ALL {
            assert_eq!(
                line_data(9, class, 1234),
                line_data(9, class, 1234),
                "{class:?}"
            );
        }
    }

    #[test]
    fn zero_lines_compress_to_one_byte() {
        assert_eq!(compressed_size(&line_data(1, PageClass::Zero, 5)), 1);
    }

    #[test]
    fn small_int_lines_compress_small() {
        let s = compressed_size(&line_data(1, PageClass::SmallInt, 5));
        assert!(s <= 24, "small ints got {s}");
    }

    #[test]
    fn strided_lines_hit_b4_encodings() {
        for line in 0..64 {
            let s = compressed_size(&line_data(1, PageClass::Strided, line));
            assert!(s <= 36, "strided line {line} got {s}");
        }
    }

    #[test]
    fn pointer_lines_hit_b8_encodings() {
        let s = compressed_size(&line_data(1, PageClass::Pointer, 5));
        assert!(s <= 24, "pointers got {s}");
    }

    #[test]
    fn half16_lines_land_near_the_threshold() {
        let s = compressed_size(&line_data(1, PageClass::Half16, 5));
        assert!((30..=40).contains(&s), "half16 got {s}");
    }

    #[test]
    fn loose16_is_single_compressible_but_pair_hostile() {
        let mut sum = 0usize;
        for i in 0..20u64 {
            let a = line_data(1, PageClass::Loose16, 64 * 5 + 2 * i);
            let b = line_data(1, PageClass::Loose16, 64 * 5 + 2 * i + 1);
            let sa = compressed_size(&a);
            assert!((36..=40).contains(&sa), "loose16 single got {sa}");
            sum += sa;
            let joint = pair_compressed_size(&a, &b);
            assert!(joint > 68, "loose16 pair must not fit a TAD, got {joint}");
        }
        assert!(
            sum >= 20 * 37,
            "typical loose16 line should exceed the 36 B threshold"
        );
    }

    #[test]
    fn float_and_random_lines_are_incompressible() {
        assert_eq!(compressed_size(&line_data(1, PageClass::Float, 5)), 64);
        assert_eq!(compressed_size(&line_data(1, PageClass::Random, 5)), 64);
    }

    #[test]
    fn strided_pairs_fit_a_tad() {
        // Adjacent strided lines continue the same sequence → shared base.
        let a = line_data(1, PageClass::Strided, 64 * 3);
        let b = line_data(1, PageClass::Strided, 64 * 3 + 1);
        let joint = pair_compressed_size(&a, &b);
        assert!(joint <= 68, "strided pair {joint} > 68");
    }

    #[test]
    fn half16_pairs_fit_only_via_sharing() {
        let a = line_data(1, PageClass::Half16, 64 * 3);
        let b = line_data(1, PageClass::Half16, 64 * 3 + 1);
        let joint = pair_compressed_size(&a, &b);
        assert!(
            joint <= 68,
            "half16 pair {joint} > 68 (B2D1 shared base = 66)"
        );
    }

    #[test]
    fn incompressible_profile_is_incompressible() {
        let p = ValueProfile::incompressible();
        let mut big = 0;
        for page in 0..200u64 {
            let class = p.class_of(3, page);
            let line = page * 64 + 7;
            if compressed_size(&line_data(3, class, line)) > 36 {
                big += 1;
            }
        }
        assert!(big >= 195, "only {big}/200 incompressible");
    }
}
