//! The workload table: synthetic equivalents of the paper's Table 3.
//!
//! Each entry records the paper's published L3 MPKI and footprint plus the
//! generator parameters (spatial locality, hot-set shape, value profile)
//! tuned so the synthetic stream exercises the same regime: bandwidth-bound
//! vs capacity-bound, compressible vs not, spatially regular vs pointer-
//! chasing. The qualitative per-workload facts the paper states are encoded
//! here:
//!
//! * BAI helps soplex, gcc, zeusmp, astar, cc_twi (Fig 7) → compressible
//!   pages with real spatial locality;
//! * BAI hurts mcf, lbm, libq, sphinx (Fig 7) → either incompressible
//!   (lbm, libq) or single-compressible-pair-hostile (`Loose16`-rich) with
//!   poor spatial locality (mcf, sphinx);
//! * GAP workloads see the largest capacity ratios (Table 5: up to 5.6×) →
//!   zero/small-int heavy CSR-like data;
//! * DICE standouts soplex, leslie3d, zeusmp, wrf, cactus mix compressible
//!   and incompressible page populations, which is exactly where a dynamic
//!   per-line index choice beats both static schemes.

use crate::value::ValueProfile;

/// Bytes per page.
pub const PAGE_BYTES: u64 = 4096;
/// Lines per page.
pub const LINES_PER_PAGE: u64 = 64;

/// Which benchmark suite a workload belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC 2006 rate mode (8 copies).
    SpecRate,
    /// GAP graph workloads.
    Gap,
    /// Non-memory-intensive SPEC (Fig 13).
    NonMem,
}

/// Generator parameters for one workload (one core's copy).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Benchmark name (paper Table 3 spelling).
    pub name: &'static str,
    /// Suite membership.
    pub suite: Suite,
    /// The paper's published L3 MPKI (8-copy rate mode) — calibration
    /// target, not an input to the generator.
    pub table3_mpki: f64,
    /// The paper's published footprint in bytes (total across 8 copies).
    pub footprint_bytes: u64,
    /// Mean instructions between L3 accesses (post-L2-miss stream).
    pub gap_mean: f64,
    /// Fraction of accesses that are writes.
    pub write_fraction: f64,
    /// Mean sequential run length in lines (spatial locality).
    pub seq_run: f64,
    /// Fraction of the footprint forming the hot set.
    pub hot_fraction: f64,
    /// Probability an access targets the hot set.
    pub hot_prob: f64,
    /// Probability a jump revisits a recently used location (short-range
    /// temporal reuse — what the shared L3 captures; calibrated against the
    /// paper's ~37% baseline L3 hit rate, Table 6).
    pub reuse_prob: f64,
    /// Size of the recently-used window in lines at full scale (divided by
    /// the experiment scale like the footprint). ~1 MB per core by default,
    /// matching the per-core L3 share.
    pub reuse_window: u64,
    /// Page-popularity skew exponent for graph workloads: page index is
    /// drawn as `footprint · u^zipf` (higher = more skewed). `None` =
    /// uniform.
    pub zipf: Option<f64>,
    /// Value model.
    pub values: ValueProfile,
}

impl WorkloadSpec {
    /// Per-core footprint in lines at scale `1/scale` (the paper runs 8
    /// identical copies; Table 3 footprints are totals).
    #[must_use]
    pub fn core_footprint_lines(&self, scale: u64) -> u64 {
        (self.footprint_bytes / 8 / 64 / scale).max(LINES_PER_PAGE * 4)
    }
}

const GB: u64 = 1 << 30;
const MB: u64 = 1 << 20;

/// Instruction gap that lands near the paper's MPKI assuming the observed
/// ~37% baseline L3 hit rate (Table 6).
fn gap_for_mpki(mpki: f64) -> f64 {
    1000.0 * 0.63 / mpki
}

macro_rules! profile {
    ($z:expr, $si:expr, $st:expr, $pt:expr, $h:expr, $l:expr, $f:expr, $r:expr) => {
        ValueProfile {
            zero: $z,
            small_int: $si,
            strided: $st,
            pointer: $pt,
            half16: $h,
            loose16: $l,
            float: $f,
            random: $r,
        }
    };
}

/// The 16 memory-intensive SPEC rate workloads plus the 6 GAP workloads
/// (paper Table 3 order).
#[must_use]
pub fn spec_table() -> Vec<WorkloadSpec> {
    let w = |name,
             suite,
             mpki,
             footprint,
             write_fraction,
             seq_run,
             hot_fraction,
             hot_prob,
             reuse_prob,
             zipf,
             values| WorkloadSpec {
        name,
        suite,
        table3_mpki: mpki,
        footprint_bytes: footprint,
        gap_mean: gap_for_mpki(mpki),
        write_fraction,
        seq_run,
        hot_fraction,
        hot_prob,
        reuse_prob,
        reuse_window: 16_384,
        zipf,
        values,
    };
    vec![
        // name, mpki, footprint, wr, seq, hotf, hotp, zipf, (z,si,st,pt,h,l16,f,r)
        w(
            "mcf",
            Suite::SpecRate,
            53.6,
            13 * GB + 205 * MB,
            0.15,
            1.2,
            0.05,
            0.55,
            0.35,
            None,
            profile!(8, 12, 5, 20, 5, 40, 5, 5),
        ),
        w(
            "lbm",
            Suite::SpecRate,
            27.5,
            3 * GB + 205 * MB,
            0.28,
            8.0,
            0.10,
            0.30,
            0.35,
            None,
            profile!(2, 2, 6, 0, 0, 5, 75, 10),
        ),
        w(
            "soplex",
            Suite::SpecRate,
            26.8,
            GB + 922 * MB,
            0.15,
            4.0,
            0.15,
            0.55,
            0.35,
            None,
            profile!(15, 18, 27, 10, 10, 5, 12, 3),
        ),
        w(
            "milc",
            Suite::SpecRate,
            25.7,
            2 * GB + 922 * MB,
            0.21,
            6.0,
            0.10,
            0.35,
            0.35,
            None,
            profile!(5, 8, 22, 0, 5, 5, 45, 10),
        ),
        w(
            "gcc",
            Suite::SpecRate,
            22.7,
            264 * MB,
            0.18,
            3.0,
            0.20,
            0.60,
            0.4,
            None,
            profile!(20, 25, 15, 22, 10, 3, 0, 5),
        ),
        w(
            "libq",
            Suite::SpecRate,
            22.2,
            256 * MB,
            0.18,
            6.0,
            0.20,
            0.50,
            0.45,
            None,
            profile!(4, 6, 6, 0, 0, 10, 37, 37),
        ),
        w(
            "Gems",
            Suite::SpecRate,
            17.2,
            6 * GB + 410 * MB,
            0.21,
            5.0,
            0.08,
            0.35,
            0.3,
            None,
            profile!(3, 5, 12, 0, 5, 5, 55, 15),
        ),
        w(
            "omnetpp",
            Suite::SpecRate,
            16.4,
            GB + 307 * MB,
            0.18,
            1.5,
            0.10,
            0.60,
            0.4,
            None,
            profile!(15, 25, 5, 38, 8, 4, 0, 5),
        ),
        w(
            "leslie3d",
            Suite::SpecRate,
            14.6,
            624 * MB,
            0.21,
            6.0,
            0.12,
            0.40,
            0.35,
            None,
            profile!(10, 10, 28, 0, 10, 4, 33, 5),
        ),
        w(
            "sphinx",
            Suite::SpecRate,
            12.9,
            128 * MB,
            0.12,
            2.0,
            0.20,
            0.55,
            0.45,
            None,
            profile!(3, 10, 5, 5, 7, 42, 18, 10),
        ),
        w(
            "zeusmp",
            Suite::SpecRate,
            5.2,
            2 * GB + 922 * MB,
            0.21,
            6.0,
            0.10,
            0.40,
            0.35,
            None,
            profile!(15, 14, 33, 0, 8, 2, 23, 5),
        ),
        w(
            "wrf",
            Suite::SpecRate,
            5.1,
            GB + 410 * MB,
            0.21,
            5.0,
            0.12,
            0.40,
            0.35,
            None,
            profile!(14, 10, 28, 0, 13, 3, 27, 5),
        ),
        w(
            "cactus",
            Suite::SpecRate,
            4.9,
            3 * GB + 307 * MB,
            0.21,
            7.0,
            0.10,
            0.35,
            0.35,
            None,
            profile!(13, 8, 29, 0, 10, 3, 32, 5),
        ),
        w(
            "astar",
            Suite::SpecRate,
            4.5,
            GB + 102 * MB,
            0.15,
            2.0,
            0.15,
            0.60,
            0.4,
            None,
            profile!(15, 28, 14, 28, 6, 4, 0, 5),
        ),
        w(
            "bzip2",
            Suite::SpecRate,
            3.6,
            2 * GB + 512 * MB,
            0.18,
            3.0,
            0.15,
            0.50,
            0.4,
            None,
            profile!(10, 18, 8, 5, 22, 15, 4, 18),
        ),
        w(
            "xalanc",
            Suite::SpecRate,
            2.2,
            GB + 922 * MB,
            0.15,
            2.0,
            0.18,
            0.60,
            0.4,
            None,
            profile!(20, 24, 6, 28, 12, 5, 0, 5),
        ),
        // GAP: CSR graphs — offset arrays (strided), vertex ids (small
        // ints), property arrays (zeros early, small values) → very
        // compressible; twitter is power-law skewed, web is crawl-ordered
        // (more sequential, milder skew).
        w(
            "bc_twi",
            Suite::Gap,
            69.7,
            19 * GB + 717 * MB,
            0.18,
            2.0,
            0.03,
            0.45,
            0.22,
            Some(2.5),
            profile!(22, 10, 16, 4, 38, 3, 2, 5),
        ),
        w(
            "bc_web",
            Suite::Gap,
            17.7,
            25 * GB,
            0.18,
            5.0,
            0.05,
            0.40,
            0.28,
            Some(1.5),
            profile!(18, 10, 18, 5, 36, 4, 4, 5),
        ),
        w(
            "cc_twi",
            Suite::Gap,
            93.9,
            14 * GB + 307 * MB,
            0.15,
            3.0,
            0.03,
            0.45,
            0.22,
            Some(2.5),
            profile!(26, 12, 14, 3, 38, 2, 0, 5),
        ),
        w(
            "cc_web",
            Suite::Gap,
            9.4,
            16 * GB,
            0.15,
            6.0,
            0.05,
            0.40,
            0.28,
            Some(1.5),
            profile!(20, 12, 16, 5, 36, 4, 3, 4),
        ),
        w(
            "pr_twi",
            Suite::Gap,
            112.9,
            23 * GB + 102 * MB,
            0.21,
            4.0,
            0.03,
            0.45,
            0.22,
            Some(2.5),
            profile!(20, 10, 18, 3, 40, 2, 2, 5),
        ),
        w(
            "pr_web",
            Suite::Gap,
            16.7,
            25 * GB + 205 * MB,
            0.21,
            6.0,
            0.05,
            0.40,
            0.28,
            Some(1.5),
            profile!(16, 10, 20, 5, 36, 4, 4, 5),
        ),
    ]
}

/// The four 8-core mixed workloads (§3.2: random draws of 8 of the 16
/// SPEC benchmarks; the draws are fixed here for reproducibility).
#[must_use]
pub fn mix_table() -> Vec<(&'static str, [&'static str; 8])> {
    vec![
        (
            "mix1",
            [
                "mcf", "lbm", "soplex", "gcc", "omnetpp", "sphinx", "astar", "xalanc",
            ],
        ),
        (
            "mix2",
            [
                "milc", "libq", "Gems", "leslie3d", "zeusmp", "wrf", "cactus", "bzip2",
            ],
        ),
        (
            "mix3",
            [
                "mcf", "milc", "gcc", "Gems", "leslie3d", "zeusmp", "astar", "bzip2",
            ],
        ),
        (
            "mix4",
            [
                "lbm", "soplex", "libq", "omnetpp", "sphinx", "wrf", "cactus", "xalanc",
            ],
        ),
    ]
}

/// The 13 non-memory-intensive SPEC workloads of Figure 13 (L3 MPKI < 2;
/// footprints mostly fit on chip, so the L4 barely matters — the point of
/// the experiment is that DICE must not *hurt* them).
#[must_use]
pub fn nonmem_table() -> Vec<WorkloadSpec> {
    let nm = |name, mpki: f64, footprint, values| WorkloadSpec {
        name,
        suite: Suite::NonMem,
        table3_mpki: mpki,
        footprint_bytes: footprint,
        gap_mean: gap_for_mpki(mpki),
        write_fraction: 0.18,
        seq_run: 3.0,
        hot_fraction: 0.5,
        hot_prob: 0.9,
        reuse_prob: 0.6,
        reuse_window: 16_384,
        zipf: None,
        values,
    };
    vec![
        nm("bwaves", 1.8, 96 * MB, profile!(8, 10, 20, 0, 10, 5, 42, 5)),
        nm(
            "calculix",
            0.6,
            48 * MB,
            profile!(10, 12, 25, 0, 10, 5, 33, 5),
        ),
        nm(
            "dealII",
            0.8,
            64 * MB,
            profile!(12, 18, 15, 20, 10, 5, 15, 5),
        ),
        nm("gamess", 0.3, 32 * MB, profile!(8, 12, 15, 5, 10, 5, 40, 5)),
        nm(
            "gobmk",
            0.5,
            32 * MB,
            profile!(15, 30, 10, 15, 15, 5, 0, 10),
        ),
        nm(
            "gromacs",
            0.4,
            48 * MB,
            profile!(8, 10, 18, 0, 10, 6, 43, 5),
        ),
        nm("h264", 0.7, 48 * MB, profile!(10, 22, 10, 8, 20, 10, 5, 15)),
        nm(
            "hmmer",
            0.5,
            32 * MB,
            profile!(10, 25, 15, 5, 20, 10, 5, 10),
        ),
        nm("namd", 0.4, 48 * MB, profile!(6, 8, 15, 0, 8, 8, 50, 5)),
        nm(
            "perlbench",
            0.6,
            64 * MB,
            profile!(15, 25, 8, 30, 10, 4, 0, 8),
        ),
        nm("povray", 0.2, 24 * MB, profile!(8, 12, 12, 10, 8, 5, 40, 5)),
        nm(
            "sjeng",
            0.4,
            32 * MB,
            profile!(12, 28, 10, 15, 15, 8, 2, 10),
        ),
        nm("tonto", 0.3, 32 * MB, profile!(8, 12, 18, 5, 10, 5, 37, 5)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_has_22_memory_intensive_workloads() {
        let t = spec_table();
        assert_eq!(t.len(), 22);
        assert_eq!(t.iter().filter(|w| w.suite == Suite::SpecRate).count(), 16);
        assert_eq!(t.iter().filter(|w| w.suite == Suite::Gap).count(), 6);
    }

    #[test]
    fn mpki_and_footprints_match_table3_spots() {
        let t = spec_table();
        let mcf = t.iter().find(|w| w.name == "mcf").unwrap();
        assert!((mcf.table3_mpki - 53.6).abs() < 1e-9);
        assert!(mcf.footprint_bytes > 13 * GB && mcf.footprint_bytes < 14 * GB);
        let pr = t.iter().find(|w| w.name == "pr_twi").unwrap();
        assert!((pr.table3_mpki - 112.9).abs() < 1e-9);
    }

    #[test]
    fn gap_mean_is_inversely_proportional_to_mpki() {
        let t = spec_table();
        let mcf = t.iter().find(|w| w.name == "mcf").unwrap();
        let xal = t.iter().find(|w| w.name == "xalanc").unwrap();
        assert!(mcf.gap_mean < xal.gap_mean);
    }

    #[test]
    fn mixes_reference_existing_workloads() {
        let names: Vec<_> = spec_table().iter().map(|w| w.name).collect();
        for (_, members) in mix_table() {
            for m in members {
                assert!(names.contains(&m), "unknown mix member {m}");
            }
        }
    }

    #[test]
    fn nonmem_workloads_have_low_mpki() {
        for w in nonmem_table() {
            assert!(w.table3_mpki < 2.0, "{} MPKI {}", w.name, w.table3_mpki);
        }
        assert_eq!(nonmem_table().len(), 13);
    }

    #[test]
    fn core_footprint_scales() {
        let t = spec_table();
        let mcf = t.iter().find(|w| w.name == "mcf").unwrap();
        let full = mcf.core_footprint_lines(1);
        let scaled = mcf.core_footprint_lines(16);
        assert!(full / scaled >= 15 && full / scaled <= 17);
    }

    #[test]
    fn footprint_floor_is_enforced() {
        let t = nonmem_table();
        let tiny = t.iter().find(|w| w.name == "povray").unwrap();
        assert!(tiny.core_footprint_lines(1 << 30) >= 256);
    }
}
