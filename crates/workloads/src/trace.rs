//! The address-stream generator.
//!
//! Produces the post-L2 access stream one core feeds the shared L3: a
//! sequence of `(instruction gap, line address, read/write)` records.
//! The structure is the standard synthetic decomposition of program
//! locality:
//!
//! * **sequential runs** — with probability governed by `seq_run`, the next
//!   access continues at `line + 1` (stream/stencil behaviour; this is what
//!   spatial indexing monetizes);
//! * **hot/cold working sets** — a `hot_fraction` prefix of the footprint
//!   absorbs `hot_prob` of the non-sequential jumps (temporal reuse, which
//!   sets the baseline L3/L4 hit rates);
//! * **Zipf page popularity** — graph workloads draw cold pages with a
//!   power-law skew instead of uniformly.

use crate::rng::SplitMix64;
use crate::spec::WorkloadSpec;
use crate::LineAddr;

/// Address-space stride between per-core regions (in lines): 2^34 lines =
/// 1 TB per core, comfortably larger than any footprint.
pub const CORE_REGION_LINES: u64 = 1 << 34;

/// One trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Instructions executed since the previous record.
    pub gap: u64,
    /// The 64 B line accessed.
    pub line: LineAddr,
    /// Write (dirty the line) vs read.
    pub write: bool,
}

/// Deterministic per-core trace generator.
#[derive(Debug, Clone)]
pub struct TraceGen {
    rng: SplitMix64,
    base: LineAddr,
    footprint: u64,
    hot_lines: u64,
    gap_mean: f64,
    seq_run: f64,
    hot_prob: f64,
    zipf: Option<f64>,
    write_fraction: f64,
    pos: u64,
    run_left: u64,
    reuse_prob: f64,
    /// Ring of recent jump targets (short-range temporal reuse).
    recent: Vec<u64>,
    recent_cap: usize,
    recent_next: usize,
    /// Seed of the per-core page-table scattering.
    page_seed: u64,
}

impl TraceGen {
    /// Generator for `core`'s copy of `spec` at full scale.
    #[must_use]
    pub fn new(spec: &WorkloadSpec, core: u32, seed: u64) -> Self {
        Self::with_scale(spec, core, seed, 1)
    }

    /// Generator with the footprint divided by `scale` (the experiment
    /// harness runs scaled-down systems, 1/256 by default; see DESIGN.md §3).
    #[must_use]
    pub fn with_scale(spec: &WorkloadSpec, core: u32, seed: u64, scale: u64) -> Self {
        let footprint = spec.core_footprint_lines(scale);
        let hot_lines = ((footprint as f64 * spec.hot_fraction) as u64).max(1);
        // Page-aligned per-core stagger, emulating the OS placing each
        // copy's pages at unrelated physical addresses. Without it, rate
        // copies would alias perfectly in every power-of-two-indexed cache.
        let stagger =
            SplitMix64::hash(seed ^ (u64::from(core) + 1).wrapping_mul(0x51_7cc1)) & 0xffff_ffc0;
        Self {
            rng: SplitMix64::new(seed ^ SplitMix64::hash(u64::from(core) * 31 + 7)),
            base: u64::from(core) * CORE_REGION_LINES + stagger,
            footprint,
            hot_lines,
            gap_mean: spec.gap_mean,
            seq_run: spec.seq_run,
            hot_prob: spec.hot_prob,
            zipf: spec.zipf,
            write_fraction: spec.write_fraction,
            pos: 0,
            run_left: 0,
            reuse_prob: spec.reuse_prob,
            recent: Vec::new(),
            // Each remembered target drags a sequential run behind it, so
            // divide the line budget by the run length to keep the reuse
            // set at roughly one per-core L3 share of *lines*.
            recent_cap: ((spec.reuse_window as f64 / scale as f64 / spec.seq_run.max(1.0))
                as usize)
                .clamp(16, 1 << 20),
            recent_next: 0,
            page_seed: SplitMix64::hash(seed ^ 0x9a9e ^ (u64::from(core) << 17)),
        }
    }

    /// Footprint in lines this generator walks.
    #[must_use]
    pub fn footprint_lines(&self) -> u64 {
        self.footprint
    }

    /// First line of this core's (staggered) region.
    #[must_use]
    pub fn region_base(&self) -> LineAddr {
        self.base
    }

    /// Produces the next access.
    pub fn next_record(&mut self) -> TraceRecord {
        let gap = self.rng.geometric(self.gap_mean);
        if self.run_left > 0 && self.pos + 1 < self.footprint {
            self.pos += 1;
            self.run_left -= 1;
        } else {
            self.pos = self.jump_target();
            // seq_run is the mean *total* run length; the continuation
            // count after the first access is one less.
            self.run_left = self.rng.geometric((self.seq_run - 1.0).max(0.0));
        }
        let write = self.rng.chance(self.write_fraction);
        TraceRecord {
            gap,
            line: self.base + self.phys(self.pos),
            write,
        }
    }

    /// Virtual-to-physical page scattering (§3.1 models address
    /// translation): positions keep their in-page offset — so sequential
    /// runs and spatial pairs survive within a page — but pages land at
    /// hash-scattered frames. Without this, a contiguous hot region would
    /// artificially alias (e.g. BAI's injected index bit would be constant
    /// across the whole hot set).
    fn phys(&self, pos: u64) -> u64 {
        const FRAME_MASK: u64 = (1 << 26) - 1; // 2^26 frames per core region
        let page = pos / 64;
        let frame = SplitMix64::hash(self.page_seed ^ page) & FRAME_MASK;
        frame * 64 + pos % 64
    }

    fn jump_target(&mut self) -> u64 {
        // Short-range temporal reuse first: revisit a recent jump target
        // (the locality tier the shared L3 captures).
        if !self.recent.is_empty() && self.rng.chance(self.reuse_prob) {
            let idx = self.rng.below(self.recent.len() as u64) as usize;
            return self.recent[idx];
        }
        let target = if self.rng.chance(self.hot_prob) {
            self.rng.below(self.hot_lines)
        } else {
            match self.zipf {
                Some(e) => {
                    let u = self.rng.unit();
                    ((self.footprint as f64) * u.powf(e)) as u64
                }
                None => self.rng.below(self.footprint),
            }
        }
        .min(self.footprint - 1);
        if self.recent.len() < self.recent_cap {
            self.recent.push(target);
        } else {
            self.recent[self.recent_next] = target;
            self.recent_next = (self.recent_next + 1) % self.recent_cap;
        }
        target
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::spec_table;

    fn spec(name: &str) -> WorkloadSpec {
        spec_table().into_iter().find(|w| w.name == name).unwrap()
    }

    #[test]
    fn records_stay_in_core_region() {
        let s = spec("gcc");
        let mut g = TraceGen::with_scale(&s, 3, 1, 16);
        for _ in 0..10_000 {
            let r = g.next_record();
            assert_eq!(
                r.line / CORE_REGION_LINES,
                3,
                "line outside core 3's region"
            );
        }
    }

    #[test]
    fn cores_are_staggered_within_their_regions() {
        let s = spec("gcc");
        let bases: Vec<u64> = (0..8)
            .map(|c| TraceGen::with_scale(&s, c, 1, 16).region_base() % CORE_REGION_LINES)
            .collect();
        // Staggers are page-aligned and distinct, so rate copies do not
        // alias in power-of-two-indexed caches.
        assert!(
            bases.iter().all(|b| b % 64 == 0),
            "staggers not page aligned: {bases:?}"
        );
        let distinct: std::collections::HashSet<_> = bases.iter().collect();
        assert_eq!(distinct.len(), 8, "staggers should differ: {bases:?}");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let s = spec("mcf");
        let mut a = TraceGen::with_scale(&s, 0, 9, 16);
        let mut b = TraceGen::with_scale(&s, 0, 9, 16);
        for _ in 0..1000 {
            assert_eq!(a.next_record(), b.next_record());
        }
    }

    #[test]
    fn cores_get_distinct_streams() {
        let s = spec("mcf");
        let mut a = TraceGen::with_scale(&s, 0, 9, 16);
        let mut b = TraceGen::with_scale(&s, 1, 9, 16);
        let same = (0..100)
            .filter(|_| {
                let (ra, rb) = (a.next_record(), b.next_record());
                ra.line == rb.line - CORE_REGION_LINES
            })
            .count();
        assert!(same < 100, "streams should differ");
    }

    #[test]
    fn mean_gap_tracks_spec() {
        let s = spec("zeusmp"); // low MPKI → large gaps
        let mut g = TraceGen::with_scale(&s, 0, 1, 16);
        let total: u64 = (0..50_000).map(|_| g.next_record().gap).sum();
        let mean = total as f64 / 50_000.0;
        assert!(
            (mean / s.gap_mean - 1.0).abs() < 0.1,
            "mean {mean} vs {}",
            s.gap_mean
        );
    }

    #[test]
    fn sequential_runs_occur() {
        let s = spec("lbm"); // seq_run = 8
        let mut g = TraceGen::with_scale(&s, 0, 1, 16);
        let mut seq = 0;
        let mut prev = g.next_record().line;
        for _ in 0..20_000 {
            let r = g.next_record();
            if r.line == prev + 1 {
                seq += 1;
            }
            prev = r.line;
        }
        assert!(
            seq > 15_000,
            "lbm should be highly sequential, got {seq}/20000"
        );
    }

    #[test]
    fn pointer_chasers_are_not_sequential() {
        let s = spec("mcf"); // seq_run = 1.2
        let mut g = TraceGen::with_scale(&s, 0, 1, 16);
        let mut seq = 0;
        let mut prev = g.next_record().line;
        for _ in 0..20_000 {
            let r = g.next_record();
            if r.line == prev + 1 {
                seq += 1;
            }
            prev = r.line;
        }
        assert!(seq < 6_000, "mcf should jump around, got {seq}/20000");
    }

    #[test]
    fn write_fraction_is_respected() {
        let s = spec("lbm");
        let expected = s.write_fraction;
        let mut g = TraceGen::with_scale(&s, 0, 1, 16);
        let writes = (0..50_000).filter(|_| g.next_record().write).count();
        let frac = writes as f64 / 50_000.0;
        assert!(
            (frac - expected).abs() < 0.02,
            "write fraction {frac} vs {expected}"
        );
    }

    #[test]
    fn zipf_skews_page_popularity() {
        use std::collections::HashMap;
        let zipfy = spec("pr_twi"); // zipf-skewed
        let flat = spec("milc"); // uniform cold region
        let concentration = |s: &WorkloadSpec| {
            let mut g = TraceGen::with_scale(s, 0, 1, 16);
            let mut freq: HashMap<u64, u64> = HashMap::new();
            for _ in 0..50_000 {
                *freq.entry(g.next_record().line / 64).or_insert(0) += 1;
            }
            // Mass captured by the top 1% most popular pages.
            let mut counts: Vec<u64> = freq.into_values().collect();
            counts.sort_unstable_by(|a, b| b.cmp(a));
            let top = counts.len().div_ceil(100);
            counts.iter().take(top).sum::<u64>() as f64 / 50_000.0
        };
        let (cz, cf) = (concentration(&zipfy), concentration(&flat));
        assert!(
            cz > cf,
            "zipf page popularity should be more concentrated: {cz} vs {cf}"
        );
    }
}
