//! The per-workload data-value oracle.
//!
//! [`DataModel`] binds a workload's [`ValueProfile`] to concrete bytes and
//! implements `dice-core`'s [`SizeInfo`], so the DRAM-cache controller's
//! capacity accounting runs on *real* FPC+BDI compressed sizes of
//! synthesized data — the actual compression code path, not a size model.
//!
//! Sizes are pure functions of the address, so they are memoized — at
//! *page* granularity: one hash lookup resolves a page's value class plus a
//! flat block of its 64 single-line sizes and 32 pair sizes, filled lazily
//! on first touch. Compared to the previous per-line `HashMap` memos this
//! turns the common case (a line in an already-seen page) into one cheap
//! hash probe plus an array index, with no SipHash and no per-line map
//! entries.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::spec::{WorkloadSpec, LINES_PER_PAGE};
use crate::value::{line_data, PageClass, ValueProfile};
use crate::LineAddr;
use dice_compress::{compressed_size, pair_compressed_size, LineData};
use dice_core::SizeInfo;

/// Saturation value for memoized pair sizes.
///
/// Joint pair sizes can reach 128 B (two raw lines), which still fits a
/// `u8`, but the set format only ever asks "does the pair fit one 72 B
/// TAD?" — any stored value above [`dice_core::SET_BYTES`] (72) means "does
/// not fit" and behaves identically. Saturating at 200 (comfortably above
/// every representable joint size *and* above 72) keeps the stored bytes
/// one code point away from accidental aliasing with real sizes.
pub const PAIR_SIZE_SATURATED: u8 = 200;

/// Sentinel for "size not computed yet" in a page's flat size blocks.
/// Valid single sizes are ≥ 1 (FPC/BDI never emit zero bytes) and valid
/// pair sizes are ≥ 2, so 0 is unreachable as a real size.
const UNFILLED: u8 = 0;

/// Size-memo block for one 4 KB page: the page's value class plus lazily
/// filled single/pair compressed sizes for its 64 lines.
#[derive(Debug, Clone)]
struct PageSizes {
    class: PageClass,
    singles: [u8; LINES_PER_PAGE as usize],
    pairs: [u8; (LINES_PER_PAGE / 2) as usize],
}

/// Multiplicative-mix hasher for page numbers (already well-scrambled by
/// the workload generators' SplitMix page scattering). One multiply per
/// lookup instead of SipHash's full permutation rounds.
#[derive(Default)]
struct PageHasher(u64);

impl Hasher for PageHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // FNV-1a fallback for non-u64 keys (not used by the page map).
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }

    fn write_u64(&mut self, v: u64) {
        // Fibonacci multiplicative hash; full-width odd constant spreads
        // consecutive page numbers across the table.
        self.0 = v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }
}

type PageMap = HashMap<u64, PageSizes, BuildHasherDefault<PageHasher>>;

/// Deterministic value model + page-granular memoized compressed sizes for
/// one workload.
#[derive(Debug, Clone)]
pub struct DataModel {
    profile: ValueProfile,
    seed: u64,
    pages: PageMap,
}

impl DataModel {
    /// Builds the oracle for `spec` with the given value seed.
    #[must_use]
    pub fn new(spec: &WorkloadSpec, seed: u64) -> Self {
        Self::from_profile(spec.values, seed)
    }

    /// Builds the oracle directly from a profile (used by mixes, where each
    /// core has its own workload but one oracle serves the whole machine —
    /// addresses disambiguate because cores occupy disjoint regions).
    #[must_use]
    pub fn from_profile(profile: ValueProfile, seed: u64) -> Self {
        Self {
            profile,
            seed,
            pages: PageMap::default(),
        }
    }

    /// The 64 bytes currently at `line`.
    #[must_use]
    pub fn line_data(&self, line: LineAddr) -> LineData {
        let class = self.profile.class_of(self.seed, line / LINES_PER_PAGE);
        line_data(self.seed, class, line)
    }

    /// Number of memoized single-line sizes (introspection for tests).
    #[must_use]
    pub fn cached_sizes(&self) -> usize {
        self.pages
            .values()
            .map(|p| p.singles.iter().filter(|&&s| s != UNFILLED).count())
            .sum()
    }

    /// Number of pages with a resident size block (introspection for tests).
    #[must_use]
    pub fn cached_pages(&self) -> usize {
        self.pages.len()
    }

    /// The page's memo block, created (with its class resolved once) on
    /// first touch.
    fn page_entry(&mut self, page: u64) -> &mut PageSizes {
        let (profile, seed) = (self.profile, self.seed);
        self.pages.entry(page).or_insert_with(|| PageSizes {
            class: profile.class_of(seed, page),
            singles: [UNFILLED; LINES_PER_PAGE as usize],
            pairs: [UNFILLED; (LINES_PER_PAGE / 2) as usize],
        })
    }
}

impl SizeInfo for DataModel {
    fn single_size(&mut self, line: LineAddr) -> u32 {
        let seed = self.seed;
        let entry = self.page_entry(line / LINES_PER_PAGE);
        let slot = (line % LINES_PER_PAGE) as usize;
        let mut s = entry.singles[slot];
        if s == UNFILLED {
            s = compressed_size(&line_data(seed, entry.class, line)) as u8;
            entry.singles[slot] = s;
        }
        u32::from(s)
    }

    fn pair_size(&mut self, even_line: LineAddr) -> u32 {
        let even_line = even_line & !1;
        let seed = self.seed;
        // Both pair members live in the same (64-line-aligned) page.
        let entry = self.page_entry(even_line / LINES_PER_PAGE);
        let slot = ((even_line % LINES_PER_PAGE) / 2) as usize;
        let mut s = entry.pairs[slot];
        if s == UNFILLED {
            let joint = pair_compressed_size(
                &line_data(seed, entry.class, even_line),
                &line_data(seed, entry.class, even_line | 1),
            );
            s = joint.min(usize::from(PAIR_SIZE_SATURATED)) as u8;
            entry.pairs[slot] = s;
        }
        u32::from(s)
    }
}

/// A multi-region oracle for mixed workloads: region `r` (core `r`) uses
/// profile `profiles[r]`.
#[derive(Debug, Clone)]
pub struct MixDataModel {
    models: Vec<DataModel>,
    region_shift: u32,
}

impl MixDataModel {
    /// One profile per core region. The region of a line is
    /// `line / CORE_REGION_LINES`, i.e. `line >> region_shift` with the
    /// shift derived from [`crate::trace::CORE_REGION_LINES`] — the single
    /// source of truth for the per-core address-space stride.
    #[must_use]
    pub fn new(profiles: Vec<ValueProfile>, seed: u64) -> Self {
        let models = profiles
            .into_iter()
            .map(|p| DataModel::from_profile(p, seed))
            .collect();
        Self {
            models,
            region_shift: crate::trace::CORE_REGION_LINES.trailing_zeros(),
        }
    }

    fn model_mut(&mut self, line: LineAddr) -> &mut DataModel {
        let r = (line >> self.region_shift) as usize;
        let n = self.models.len();
        &mut self.models[r.min(n - 1)]
    }
}

impl SizeInfo for MixDataModel {
    fn single_size(&mut self, line: LineAddr) -> u32 {
        self.model_mut(line).single_size(line)
    }

    fn pair_size(&mut self, even_line: LineAddr) -> u32 {
        self.model_mut(even_line).pair_size(even_line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::spec_table;
    use crate::trace::CORE_REGION_LINES;

    fn spec(name: &str) -> WorkloadSpec {
        spec_table().into_iter().find(|w| w.name == name).unwrap()
    }

    #[test]
    fn sizes_are_memoized_and_stable() {
        let mut m = DataModel::new(&spec("gcc"), 5);
        let a = m.single_size(1234);
        assert_eq!(m.cached_sizes(), 1);
        assert_eq!(m.single_size(1234), a);
        assert_eq!(m.cached_sizes(), 1);
        assert_eq!(m.cached_pages(), 1);
    }

    #[test]
    fn lines_of_one_page_share_one_memo_block() {
        let mut m = DataModel::new(&spec("gcc"), 5);
        for line in 0..LINES_PER_PAGE {
            m.single_size(line);
            m.pair_size(line);
        }
        assert_eq!(m.cached_pages(), 1, "one page block serves 64 lines");
        assert_eq!(m.cached_sizes(), LINES_PER_PAGE as usize);
    }

    #[test]
    fn pair_size_normalizes_odd_addresses() {
        let mut m = DataModel::new(&spec("gcc"), 5);
        assert_eq!(m.pair_size(100), m.pair_size(101));
    }

    #[test]
    fn pair_size_saturates_below_the_sentinel_ceiling() {
        // The worst joint size is two raw lines = 128 B; stored values must
        // normalize odd/even the same way and never exceed the saturation
        // constant. Anything above 72 B (one TAD) means "does not fit".
        let mut m = DataModel::from_profile(ValueProfile::incompressible(), 5);
        for even in (0..200u64).step_by(2) {
            let p = m.pair_size(even);
            assert_eq!(p, m.pair_size(even + 1), "odd address must normalize");
            assert!(p <= u32::from(PAIR_SIZE_SATURATED));
        }
        // An incompressible pair cannot fit one TAD.
        assert!(m.pair_size(0) > 72);
    }

    #[test]
    fn sizes_match_direct_compression() {
        let mut m = DataModel::new(&spec("soplex"), 5);
        for line in (0..2000u64).step_by(37) {
            let direct = compressed_size(&m.line_data(line)) as u32;
            assert_eq!(m.single_size(line), direct, "line {line}");
        }
    }

    #[test]
    fn incompressible_workload_yields_big_sizes() {
        let mut lbm = DataModel::new(&spec("lbm"), 5);
        let big = (0..500u64)
            .filter(|&l| lbm.single_size(l * 64) > 36)
            .count();
        assert!(
            big > 350,
            "lbm should be mostly incompressible, got {big}/500 big"
        );
    }

    #[test]
    fn compressible_workload_yields_small_sizes() {
        let mut gap = DataModel::new(&spec("cc_twi"), 5);
        let small = (0..500u64)
            .filter(|&l| gap.single_size(l * 64) <= 36)
            .count();
        assert!(
            small > 350,
            "cc_twi should be mostly compressible, got {small}/500 small"
        );
    }

    #[test]
    fn mix_model_routes_by_region() {
        let zeros = ValueProfile {
            zero: 1,
            small_int: 0,
            strided: 0,
            pointer: 0,
            half16: 0,
            loose16: 0,
            float: 0,
            random: 0,
        };
        let mut m = MixDataModel::new(vec![zeros, ValueProfile::incompressible()], 1);
        assert_eq!(m.single_size(5), 1, "region 0 is all zeros");
        assert_eq!(
            m.single_size(CORE_REGION_LINES + 5),
            64,
            "region 1 is incompressible"
        );
    }

    #[test]
    fn region_boundary_routes_to_next_model() {
        let zeros = ValueProfile {
            zero: 1,
            small_int: 0,
            strided: 0,
            pointer: 0,
            half16: 0,
            loose16: 0,
            float: 0,
            random: 0,
        };
        let mut m = MixDataModel::new(vec![zeros, ValueProfile::incompressible()], 1);
        // The last line of region 0 uses model 0; one line later (the first
        // line of region 1) must route to model 1 — the shift is derived
        // from CORE_REGION_LINES, not an independent constant.
        assert_eq!(m.single_size(CORE_REGION_LINES - 1), 1);
        assert_eq!(m.single_size(CORE_REGION_LINES), 64);
    }
}
