//! The per-workload data-value oracle.
//!
//! [`DataModel`] binds a workload's [`ValueProfile`] to concrete bytes and
//! implements `dice-core`'s [`SizeInfo`], so the DRAM-cache controller's
//! capacity accounting runs on *real* FPC+BDI compressed sizes of
//! synthesized data — the actual compression code path, not a size model.
//! Sizes are memoized (they are pure functions of the address).

use std::collections::HashMap;

use crate::spec::{WorkloadSpec, LINES_PER_PAGE};
use crate::value::{line_data, ValueProfile};
use crate::LineAddr;
use dice_compress::{compressed_size, pair_compressed_size, LineData};
use dice_core::SizeInfo;

/// Deterministic value model + memoized compressed sizes for one workload.
#[derive(Debug, Clone)]
pub struct DataModel {
    profile: ValueProfile,
    seed: u64,
    singles: HashMap<LineAddr, u8>,
    pairs: HashMap<LineAddr, u8>,
}

impl DataModel {
    /// Builds the oracle for `spec` with the given value seed.
    #[must_use]
    pub fn new(spec: &WorkloadSpec, seed: u64) -> Self {
        Self::from_profile(spec.values, seed)
    }

    /// Builds the oracle directly from a profile (used by mixes, where each
    /// core has its own workload but one oracle serves the whole machine —
    /// addresses disambiguate because cores occupy disjoint regions).
    #[must_use]
    pub fn from_profile(profile: ValueProfile, seed: u64) -> Self {
        Self {
            profile,
            seed,
            singles: HashMap::new(),
            pairs: HashMap::new(),
        }
    }

    /// The 64 bytes currently at `line`.
    #[must_use]
    pub fn line_data(&self, line: LineAddr) -> LineData {
        let class = self.profile.class_of(self.seed, line / LINES_PER_PAGE);
        line_data(self.seed, class, line)
    }

    /// Number of memoized single-line sizes (introspection for tests).
    #[must_use]
    pub fn cached_sizes(&self) -> usize {
        self.singles.len()
    }
}

impl SizeInfo for DataModel {
    fn single_size(&mut self, line: LineAddr) -> u32 {
        if let Some(&s) = self.singles.get(&line) {
            return u32::from(s);
        }
        let s = compressed_size(&self.line_data(line)) as u8;
        self.singles.insert(line, s);
        u32::from(s)
    }

    fn pair_size(&mut self, even_line: LineAddr) -> u32 {
        let even_line = even_line & !1;
        if let Some(&s) = self.pairs.get(&even_line) {
            return u32::from(s);
        }
        let joint =
            pair_compressed_size(&self.line_data(even_line), &self.line_data(even_line | 1));
        // Joint sizes can reach 128 (two raw lines); saturate into u8 — any
        // value above one TAD is equally "does not fit".
        let stored = joint.min(200) as u8;
        self.pairs.insert(even_line, stored);
        u32::from(stored)
    }
}

/// A multi-region oracle for mixed workloads: region `r` (core `r`) uses
/// profile `profiles[r]`.
#[derive(Debug, Clone)]
pub struct MixDataModel {
    models: Vec<DataModel>,
    region_shift: u32,
}

impl MixDataModel {
    /// One profile per core region (region = line >> 34, matching
    /// [`crate::trace::CORE_REGION_LINES`]).
    #[must_use]
    pub fn new(profiles: Vec<ValueProfile>, seed: u64) -> Self {
        let models = profiles
            .into_iter()
            .map(|p| DataModel::from_profile(p, seed))
            .collect();
        Self {
            models,
            region_shift: 34,
        }
    }

    fn model_mut(&mut self, line: LineAddr) -> &mut DataModel {
        let r = (line >> self.region_shift) as usize;
        let n = self.models.len();
        &mut self.models[r.min(n - 1)]
    }
}

impl SizeInfo for MixDataModel {
    fn single_size(&mut self, line: LineAddr) -> u32 {
        self.model_mut(line).single_size(line)
    }

    fn pair_size(&mut self, even_line: LineAddr) -> u32 {
        self.model_mut(even_line).pair_size(even_line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::spec_table;

    fn spec(name: &str) -> WorkloadSpec {
        spec_table().into_iter().find(|w| w.name == name).unwrap()
    }

    #[test]
    fn sizes_are_memoized_and_stable() {
        let mut m = DataModel::new(&spec("gcc"), 5);
        let a = m.single_size(1234);
        assert_eq!(m.cached_sizes(), 1);
        assert_eq!(m.single_size(1234), a);
        assert_eq!(m.cached_sizes(), 1);
    }

    #[test]
    fn pair_size_normalizes_odd_addresses() {
        let mut m = DataModel::new(&spec("gcc"), 5);
        assert_eq!(m.pair_size(100), m.pair_size(101));
    }

    #[test]
    fn sizes_match_direct_compression() {
        let mut m = DataModel::new(&spec("soplex"), 5);
        for line in (0..2000u64).step_by(37) {
            let direct = compressed_size(&m.line_data(line)) as u32;
            assert_eq!(m.single_size(line), direct, "line {line}");
        }
    }

    #[test]
    fn incompressible_workload_yields_big_sizes() {
        let mut lbm = DataModel::new(&spec("lbm"), 5);
        let big = (0..500u64)
            .filter(|&l| lbm.single_size(l * 64) > 36)
            .count();
        assert!(
            big > 350,
            "lbm should be mostly incompressible, got {big}/500 big"
        );
    }

    #[test]
    fn compressible_workload_yields_small_sizes() {
        let mut gap = DataModel::new(&spec("cc_twi"), 5);
        let small = (0..500u64)
            .filter(|&l| gap.single_size(l * 64) <= 36)
            .count();
        assert!(
            small > 350,
            "cc_twi should be mostly compressible, got {small}/500 small"
        );
    }

    #[test]
    fn mix_model_routes_by_region() {
        let zeros = ValueProfile {
            zero: 1,
            small_int: 0,
            strided: 0,
            pointer: 0,
            half16: 0,
            loose16: 0,
            float: 0,
            random: 0,
        };
        let mut m = MixDataModel::new(vec![zeros, ValueProfile::incompressible()], 1);
        assert_eq!(m.single_size(5), 1, "region 0 is all zeros");
        assert_eq!(
            m.single_size((1 << 34) + 5),
            64,
            "region 1 is incompressible"
        );
    }
}
