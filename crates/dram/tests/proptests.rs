//! Property-based tests for the DRAM timing model: causality, conservation
//! and bus-exclusivity under arbitrary access patterns.

use dice_dram::{AccessKind, DramConfig, DramDevice, Location};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Req {
    dt: u16,
    channel: u8,
    bank: u8,
    row: u16,
    write: bool,
    bytes_sel: u8,
}

fn arb_reqs() -> impl Strategy<Value = Vec<Req>> {
    proptest::collection::vec(
        (
            any::<u16>(),
            any::<u8>(),
            any::<u8>(),
            any::<u16>(),
            any::<bool>(),
            any::<u8>(),
        )
            .prop_map(|(dt, channel, bank, row, write, bytes_sel)| Req {
                dt: dt % 200,
                channel,
                bank,
                row,
                write,
                bytes_sel,
            }),
        1..300,
    )
}

fn bytes_of(sel: u8) -> u32 {
    [64u32, 72, 80][usize::from(sel) % 3]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn accesses_are_causal_and_accounted(reqs in arb_reqs()) {
        let cfg = DramConfig::stacked_l4();
        let mut dev = DramDevice::new(cfg.clone());
        let mut now = 0u64;
        let mut total_bytes = 0u64;
        for r in &reqs {
            now += u64::from(r.dt);
            let loc = Location {
                channel: u32::from(r.channel) % cfg.channels,
                bank: u32::from(r.bank) % cfg.banks_per_channel,
                row: u64::from(r.row),
            };
            let kind = if r.write { AccessKind::Write } else { AccessKind::Read };
            let bytes = bytes_of(r.bytes_sel);
            total_bytes += u64::from(bytes);
            let res = dev.access(now, kind, loc, bytes);
            // Causality: service starts no earlier than submission and
            // completes after at least one row-hit latency + burst.
            prop_assert!(res.start >= now);
            prop_assert!(res.done >= res.start + cfg.row_hit_latency());
            prop_assert!(res.latency_from(now) >= cfg.row_hit_latency());
        }
        let s = dev.stats();
        prop_assert_eq!(s.accesses(), reqs.len() as u64);
        prop_assert_eq!(s.bytes, total_bytes);
        prop_assert!(s.row_hits + s.activates >= s.accesses());
        prop_assert!(s.row_hits <= s.accesses());
        prop_assert!(s.busy_cycles <= s.last_done * u64::from(cfg.channels));
    }

    #[test]
    fn same_bank_same_row_accesses_never_regress(reqs in arb_reqs()) {
        // Back-to-back accesses to one location complete in submission
        // order (FIFO per resource).
        let mut dev = DramDevice::new(DramConfig::ddr_main());
        let loc = Location { channel: 0, bank: 0, row: 7 };
        let mut now = 0u64;
        let mut last_done = 0u64;
        for r in &reqs {
            now += u64::from(r.dt);
            let res = dev.access(now, AccessKind::Read, loc, 64);
            prop_assert!(res.done > last_done, "completion regressed");
            last_done = res.done;
        }
    }

    #[test]
    fn single_channel_throughput_is_bus_bounded(n in 10u64..200) {
        // n back-to-back 80 B reads of one row cannot finish faster than
        // the bus can stream them.
        let cfg = DramConfig::stacked_l4();
        let mut dev = DramDevice::new(cfg.clone());
        let loc = Location { channel: 0, bank: 0, row: 3 };
        let mut done = 0;
        for _ in 0..n {
            done = dev.access(0, AccessKind::Read, loc, 80).done;
        }
        let min_stream = n * cfg.burst_cycles(80);
        prop_assert!(done >= min_stream, "done {done} < bus floor {min_stream}");
    }

    #[test]
    fn half_latency_config_is_never_slower(reqs in arb_reqs()) {
        let base_cfg = DramConfig::stacked_l4();
        let fast_cfg = DramConfig::stacked_l4().with_half_latency();
        let mut base = DramDevice::new(base_cfg.clone());
        let mut fast = DramDevice::new(fast_cfg);
        let mut now = 0u64;
        for r in &reqs {
            now += u64::from(r.dt);
            let loc = Location {
                channel: u32::from(r.channel) % base_cfg.channels,
                bank: u32::from(r.bank) % base_cfg.banks_per_channel,
                row: u64::from(r.row) % 16,
            };
            let b = base.access(now, AccessKind::Read, loc, 80);
            let f = fast.access(now, AccessKind::Read, loc, 80);
            prop_assert!(f.done <= b.done, "half-latency device slower: {} > {}", f.done, b.done);
        }
    }

    #[test]
    fn interleave_is_always_in_range(row in any::<u64>()) {
        let cfg = DramConfig::stacked_l4();
        let loc = Location::interleave(&cfg, row);
        prop_assert!(loc.channel < cfg.channels);
        prop_assert!(loc.bank < cfg.banks_per_channel);
    }

    #[test]
    fn energy_is_monotone_in_traffic(extra in 1u32..100) {
        use dice_dram::EnergyModel;
        let mut a = DramDevice::new(DramConfig::ddr_main());
        let mut b = DramDevice::new(DramConfig::ddr_main());
        for i in 0..50u64 {
            let loc = Location { channel: 0, bank: (i % 16) as u32, row: i };
            a.access(i * 10, AccessKind::Read, loc, 64);
            b.access(i * 10, AccessKind::Read, loc, 64);
        }
        for i in 0..u64::from(extra) {
            let loc = Location { channel: 0, bank: (i % 16) as u32, row: 500 + i };
            b.access(1_000_000 + i * 10, AccessKind::Write, loc, 64);
        }
        let m = EnergyModel::ddr();
        prop_assert!(m.dynamic_energy(b.stats()) > m.dynamic_energy(a.stats()));
    }
}
