//! The DRAM device model: banks, row buffers, channel buses and queues.

use std::collections::VecDeque;

use crate::config::DramConfig;
use crate::stats::DramStats;
use crate::Cycle;

/// Whether an access reads from or writes to the array.
///
/// Reads and writes have the same array timing in this model; they are
/// distinguished for statistics and energy accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Data transfer from DRAM to the controller.
    Read,
    /// Data transfer from the controller to DRAM.
    Write,
}

/// Physical placement of an access: which channel, bank and row.
///
/// Callers (the DRAM-cache controller, the main-memory controller) own the
/// address-to-location mapping; [`Location::interleave`] provides the
/// standard row-interleaved mapping both use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Location {
    /// Channel index, `< config.channels`.
    pub channel: u32,
    /// Bank index within the channel, `< config.banks_per_channel`.
    pub bank: u32,
    /// Row index within the bank (arbitrary u64 namespace).
    pub row: u64,
}

impl Location {
    /// Maps a global row id onto (channel, bank, row) by interleaving
    /// consecutive rows across channels, then banks — spreading adjacent
    /// rows for maximum parallelism, as real controllers do.
    #[must_use]
    pub fn interleave(cfg: &DramConfig, global_row: u64) -> Self {
        let ch = (global_row % u64::from(cfg.channels)) as u32;
        let rest = global_row / u64::from(cfg.channels);
        let bank = (rest % u64::from(cfg.banks_per_channel)) as u32;
        let row = rest / u64::from(cfg.banks_per_channel);
        Self {
            channel: ch,
            bank,
            row,
        }
    }
}

/// Timing outcome of one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// When the device began servicing the request (after queue and bank
    /// availability).
    pub start: Cycle,
    /// When the full data transfer finished; for reads this is when the
    /// requester observes the data.
    pub done: Cycle,
    /// Whether the access hit the open row in its bank's row buffer.
    pub row_hit: bool,
}

impl AccessResult {
    /// Total request latency as seen from submission time.
    #[must_use]
    pub fn latency_from(&self, submitted: Cycle) -> Cycle {
        self.done.saturating_sub(submitted)
    }
}

#[derive(Debug, Clone, Default)]
struct Bank {
    open_row: Option<u64>,
    /// Earliest cycle the next column command may issue (successive CAS
    /// commands to an open row pipeline at burst granularity — tCCD — so
    /// row-hit streams run at bus rate, not CAS-latency rate).
    cas_ready: Cycle,
    /// Cycle of the last activate, for the tRAS constraint.
    last_activate: Cycle,
}

/// Data-bus schedule for one channel: sorted, disjoint busy intervals with
/// gap backfill.
///
/// The simulator computes some transfers ahead of global time (dependent
/// probe chains, memory round trips), so a scalar "bus free at" pointer
/// would let one future reservation block every earlier transfer —
/// artificial head-of-line blocking. Instead we keep the busy intervals and
/// place each burst in the earliest gap after its data-ready time, merging
/// adjacent intervals and pruning those older than a horizon no new request
/// can reach back past.
#[derive(Debug, Clone, Default)]
struct BusSchedule {
    busy: VecDeque<(Cycle, Cycle)>,
    watermark: Cycle,
}

/// How far back a newly computed transfer may land relative to the newest
/// one (bounded by the longest probe/memory chain the simulator builds).
const BUS_HORIZON: Cycle = 1 << 14;

impl BusSchedule {
    /// Reserves `dur` cycles starting no earlier than `earliest`; returns
    /// the transfer start time.
    fn reserve(&mut self, earliest: Cycle, dur: Cycle) -> Cycle {
        self.watermark = self.watermark.max(earliest.saturating_sub(BUS_HORIZON));
        while let Some(&(_, e)) = self.busy.front() {
            if e <= self.watermark {
                self.busy.pop_front();
            } else {
                break;
            }
        }

        // Intervals ending at or before `earliest` can neither host the
        // burst (their start is below `earliest`) nor delay it, so skip
        // straight past them — the busy list is sorted and disjoint, and
        // most requests land near its tail, turning the placement scan
        // from O(intervals) into O(log n + overlap).
        let mut t = earliest;
        let first = self.busy.partition_point(|&(_, e)| e <= earliest);
        let mut idx = self.busy.len();
        for (i, &(s, e)) in self.busy.iter().enumerate().skip(first) {
            if t + dur <= s {
                idx = i;
                break;
            }
            t = t.max(e);
        }
        // Merge with neighbors when the new interval touches them.
        let end = t + dur;
        let merge_prev = idx > 0 && self.busy[idx - 1].1 == t;
        let merge_next = idx < self.busy.len() && self.busy[idx].0 == end;
        match (merge_prev, merge_next) {
            (true, true) => {
                self.busy[idx - 1].1 = self.busy[idx].1;
                self.busy.remove(idx);
            }
            (true, false) => self.busy[idx - 1].1 = end,
            (false, true) => self.busy[idx].0 = t,
            (false, false) => {
                self.busy.insert(idx, (t, end));
            }
        }
        t
    }
}

#[derive(Debug, Clone)]
struct Channel {
    banks: Vec<Bank>,
    /// Data-bus busy intervals.
    bus: BusSchedule,
    /// Completion times of in-flight requests (bounded queue model).
    inflight: VecDeque<Cycle>,
}

/// A DRAM device: the timing state machine plus statistics.
///
/// Deterministic: identical access sequences produce identical timings.
#[derive(Debug, Clone)]
pub struct DramDevice {
    cfg: DramConfig,
    channels: Vec<Channel>,
    stats: DramStats,
}

impl DramDevice {
    /// Creates a device with all banks idle and rows closed.
    #[must_use]
    pub fn new(cfg: DramConfig) -> Self {
        let channels = (0..cfg.channels)
            .map(|_| Channel {
                banks: vec![Bank::default(); cfg.banks_per_channel as usize],
                bus: BusSchedule::default(),
                inflight: VecDeque::new(),
            })
            .collect();
        Self {
            cfg,
            channels,
            stats: DramStats::default(),
        }
    }

    /// The device's configuration.
    #[must_use]
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Services one access of `bytes` at `loc`, submitted at cycle `now`.
    ///
    /// Returns when the access started and completed. The model:
    ///
    /// 1. back-pressure — if `queue_depth` requests are still in flight on
    ///    the channel, the request waits for the oldest to drain;
    /// 2. bank availability and the row-buffer state machine (open-page:
    ///    a row stays open until a different row in the same bank is used);
    /// 3. data-bus serialization — bursts on one channel never overlap.
    ///
    /// # Panics
    ///
    /// Panics if `loc` is out of range for the configuration.
    pub fn access(
        &mut self,
        now: Cycle,
        kind: AccessKind,
        loc: Location,
        bytes: u32,
    ) -> AccessResult {
        let burst = self.cfg.burst_cycles(bytes);
        let ch = &mut self.channels[loc.channel as usize];

        // Bounded queue: wait for a slot if the channel is saturated.
        while let Some(&front) = ch.inflight.front() {
            if front <= now {
                ch.inflight.pop_front();
            } else {
                break;
            }
        }
        let mut start = now;
        if ch.inflight.len() >= self.cfg.queue_depth {
            let drain = ch.inflight.pop_front().expect("queue nonempty");
            start = start.max(drain);
            self.stats.queue_stalls += 1;
        }

        let bank = &mut ch.banks[loc.bank as usize];
        let arrive = start;

        let row_hit = bank.open_row == Some(loc.row);
        let data_at = if row_hit {
            let cas_at = start.max(bank.cas_ready);
            bank.cas_ready = cas_at + burst;
            cas_at + self.cfg.t_cas
        } else {
            // A bank with an open row must precharge first; the precharge
            // waits for the last column command and respects tRAS from the
            // previous activate. An idle bank activates immediately.
            let act_at = if bank.open_row.is_some() {
                start
                    .max(bank.cas_ready)
                    .max(bank.last_activate + self.cfg.t_ras)
                    + self.cfg.t_rp
            } else {
                start.max(bank.cas_ready)
            };
            bank.last_activate = act_at;
            bank.open_row = Some(loc.row);
            self.stats.activates += 1;
            let cas_at = act_at + self.cfg.t_rcd;
            bank.cas_ready = cas_at + burst;
            cas_at + self.cfg.t_cas
        };

        self.stats.bank_wait_sum += data_at - arrive;

        // Serialize the data burst on the channel bus (earliest gap that
        // fits; see [`BusSchedule`]). The bank's command pipeline is gated
        // only by tCCD/row cycles; bus contention is modeled once, here.
        let xfer_start = ch.bus.reserve(data_at, burst);
        self.stats.bus_wait_sum += xfer_start - data_at;
        let done = xfer_start + burst;
        ch.inflight.push_back(done);

        match kind {
            AccessKind::Read => self.stats.reads += 1,
            AccessKind::Write => self.stats.writes += 1,
        }
        self.stats.bytes += u64::from(bytes);
        self.stats.busy_cycles += burst;
        if row_hit {
            self.stats.row_hits += 1;
        }
        self.stats.latency_sum += done - now;
        self.stats.last_done = self.stats.last_done.max(done);

        AccessResult {
            start,
            done,
            row_hit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l4() -> DramDevice {
        DramDevice::new(DramConfig::stacked_l4())
    }

    const LOC: Location = Location {
        channel: 0,
        bank: 0,
        row: 5,
    };

    #[test]
    fn cold_access_is_a_row_miss() {
        let mut d = l4();
        let r = d.access(0, AccessKind::Read, LOC, 80);
        assert!(!r.row_hit);
        // activate (44) + cas (44) + 5 bursts (10) = 98 from an idle bank
        // (no precharge needed when no row is open).
        assert_eq!(r.done, 98);
    }

    #[test]
    fn second_access_same_row_hits() {
        let mut d = l4();
        let a = d.access(0, AccessKind::Read, LOC, 80);
        let b = d.access(a.done, AccessKind::Read, LOC, 80);
        assert!(b.row_hit);
        assert_eq!(b.done - b.start, 44 + 10);
    }

    #[test]
    fn row_conflict_pays_precharge_and_ras() {
        let mut d = l4();
        let a = d.access(0, AccessKind::Read, LOC, 80);
        let other = Location { row: 9, ..LOC };
        let b = d.access(a.done, AccessKind::Read, other, 80);
        assert!(!b.row_hit);
        // Activate was at cycle 0; precharge cannot start before
        // tRAS = 112. Then tRP + tRCD + tCAS + burst.
        assert_eq!(b.done, 112 + 44 + 44 + 44 + 10);
    }

    #[test]
    fn row_hits_stream_at_bus_rate() {
        // 28 TADs live in one 2 KB row; reading them back to back must
        // pipeline CAS commands (tCCD) and stream at burst rate, not
        // serialize full CAS latencies.
        let mut d = l4();
        let first = d.access(0, AccessKind::Read, LOC, 80);
        let mut done = first.done;
        for _ in 0..27 {
            done = d.access(0, AccessKind::Read, LOC, 80).done;
        }
        // First access: activate+CAS+burst = 98; the rest stream at 10
        // cycles per 80 B burst.
        assert_eq!(done, 98 + 27 * 10);
    }

    #[test]
    fn different_banks_overlap() {
        let mut d = l4();
        let a = d.access(0, AccessKind::Read, LOC, 80);
        let b = d.access(0, AccessKind::Read, Location { bank: 1, ..LOC }, 80);
        // Both start immediately; bus serializes only the 10-cycle bursts.
        assert_eq!(a.start, 0);
        assert_eq!(b.start, 0);
        assert_eq!(b.done, a.done + 10);
    }

    #[test]
    fn different_channels_are_independent() {
        let mut d = l4();
        let a = d.access(0, AccessKind::Read, LOC, 80);
        let b = d.access(0, AccessKind::Read, Location { channel: 1, ..LOC }, 80);
        assert_eq!(a.done, b.done);
    }

    #[test]
    fn bus_saturates_under_load() {
        let mut d = l4();
        // 32 back-to-back row hits on different banks of one channel: after
        // warmup the bus (10 cycles/burst) is the bottleneck.
        for bank in 0..16 {
            d.access(
                0,
                AccessKind::Read,
                Location {
                    channel: 0,
                    bank,
                    row: 1,
                },
                80,
            );
        }
        let before = d.stats().last_done;
        for bank in 0..16 {
            d.access(
                0,
                AccessKind::Read,
                Location {
                    channel: 0,
                    bank,
                    row: 1,
                },
                80,
            );
        }
        let after = d.stats().last_done;
        assert_eq!(after - before, 16 * 10);
    }

    #[test]
    fn queue_backpressure_stalls_start() {
        let mut cfg = DramConfig::stacked_l4();
        cfg.queue_depth = 2;
        let mut d = DramDevice::new(cfg);
        let r1 = d.access(0, AccessKind::Read, LOC, 80);
        let _r2 = d.access(0, AccessKind::Read, Location { bank: 1, ..LOC }, 80);
        let r3 = d.access(0, AccessKind::Read, Location { bank: 2, ..LOC }, 80);
        assert!(
            r3.start >= r1.done,
            "third request should wait for a queue slot"
        );
        assert_eq!(d.stats().queue_stalls, 1);
    }

    #[test]
    fn interleave_spreads_consecutive_rows() {
        let cfg = DramConfig::stacked_l4();
        let a = Location::interleave(&cfg, 0);
        let b = Location::interleave(&cfg, 1);
        let c = Location::interleave(&cfg, 4);
        assert_ne!(a.channel, b.channel);
        assert_eq!(a.channel, c.channel);
        assert_ne!(a.bank, c.bank);
    }

    #[test]
    fn interleave_is_injective_over_a_window() {
        let cfg = DramConfig::stacked_l4();
        let mut seen = std::collections::HashSet::new();
        for row in 0..4096u64 {
            assert!(
                seen.insert(Location::interleave(&cfg, row)),
                "collision at {row}"
            );
        }
    }

    #[test]
    fn stats_accumulate() {
        let mut d = l4();
        d.access(0, AccessKind::Read, LOC, 80);
        d.access(200, AccessKind::Write, LOC, 80);
        let s = d.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.activates, 1);
        assert_eq!(s.row_hits, 1);
        assert_eq!(s.bytes, 160);
    }

    #[test]
    fn writes_share_timing_with_reads() {
        let mut d1 = l4();
        let mut d2 = l4();
        let r = d1.access(0, AccessKind::Read, LOC, 80);
        let w = d2.access(0, AccessKind::Write, LOC, 80);
        assert_eq!(r.done, w.done);
    }
}
