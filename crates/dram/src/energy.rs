//! Per-event DRAM energy model feeding the paper's Figure 14 (energy/EDP).
//!
//! The paper reports *normalized* L4+memory power, energy and
//! energy-delay-product. Its deltas come from changes in access counts and
//! runtime, so any monotone per-event model reproduces the direction and
//! approximate magnitude. We use representative per-event energies:
//! stacked DRAM transfers cost ~4 pJ/bit and DDR off-package transfers
//! ~20 pJ/bit, plus per-activate row energy and a constant background power.

use crate::stats::DramStats;
use crate::Cycle;

/// Energy in joules.
pub type Joules = f64;

/// Per-event energy coefficients for one DRAM device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Energy per row activation.
    pub activate_j: Joules,
    /// Energy per transferred byte (array access + I/O).
    pub per_byte_j: Joules,
    /// Background (standby/refresh) power in watts.
    pub background_w: f64,
    /// CPU clock in Hz, to convert cycles to seconds.
    pub cpu_hz: f64,
}

impl EnergyModel {
    /// Stacked-DRAM (HBM-like) coefficients: ~4 pJ/bit transfer,
    /// 1 nJ per activate, 0.5 W background.
    #[must_use]
    pub fn stacked() -> Self {
        Self {
            activate_j: 1.0e-9,
            per_byte_j: 32.0e-12,
            background_w: 0.5,
            cpu_hz: 3.2e9,
        }
    }

    /// DDR DIMM coefficients: ~20 pJ/bit transfer (off-package I/O),
    /// 2 nJ per activate, 1 W background.
    #[must_use]
    pub fn ddr() -> Self {
        Self {
            activate_j: 2.0e-9,
            per_byte_j: 160.0e-12,
            background_w: 1.0,
            cpu_hz: 3.2e9,
        }
    }

    /// Dynamic energy for the events counted in `stats`.
    #[must_use]
    pub fn dynamic_energy(&self, stats: &DramStats) -> Joules {
        stats.activates as f64 * self.activate_j + stats.bytes as f64 * self.per_byte_j
    }

    /// Background energy over `elapsed` CPU cycles.
    #[must_use]
    pub fn background_energy(&self, elapsed: Cycle) -> Joules {
        self.background_w * elapsed as f64 / self.cpu_hz
    }

    /// Total energy: dynamic plus background over `elapsed` cycles.
    #[must_use]
    pub fn total_energy(&self, stats: &DramStats, elapsed: Cycle) -> Joules {
        self.dynamic_energy(stats) + self.background_energy(elapsed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr_bytes_cost_more_than_stacked() {
        let s = DramStats {
            bytes: 1_000_000,
            ..DramStats::default()
        };
        assert!(EnergyModel::ddr().dynamic_energy(&s) > EnergyModel::stacked().dynamic_energy(&s));
    }

    #[test]
    fn background_scales_with_time() {
        let m = EnergyModel::stacked();
        let e1 = m.background_energy(3_200_000_000); // 1 second
        assert!((e1 - 0.5).abs() < 1e-12);
        assert!((m.background_energy(6_400_000_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn total_is_sum_of_parts() {
        let m = EnergyModel::stacked();
        let s = DramStats {
            activates: 10,
            bytes: 100,
            ..DramStats::default()
        };
        let total = m.total_energy(&s, 1000);
        assert!((total - (m.dynamic_energy(&s) + m.background_energy(1000))).abs() < 1e-18);
    }

    #[test]
    fn fewer_accesses_less_energy() {
        let m = EnergyModel::ddr();
        let many = DramStats {
            activates: 100,
            bytes: 64_000,
            ..DramStats::default()
        };
        let few = DramStats {
            activates: 10,
            bytes: 6_400,
            ..DramStats::default()
        };
        assert!(m.dynamic_energy(&few) < m.dynamic_energy(&many));
    }
}
