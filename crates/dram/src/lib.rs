//! DRAM timing and energy substrate for the DICE reproduction.
//!
//! The DICE paper evaluates on USIMM with a detailed memory-system model:
//! a stacked-DRAM (HBM-like) L4 cache — 4 channels × 128-bit bus — and a
//! DDR main memory — 1 channel × 64-bit bus — both at 800 MHz (DDR 1.6 GT/s)
//! with tCAS-tRCD-tRP-tRAS of 44-44-44-112 CPU cycles (Table 2). This crate
//! rebuilds that substrate as a deterministic queueing model:
//!
//! * per-bank row-buffer state (open-page policy) with activate/precharge
//!   timing and row-hit fast paths,
//! * per-channel data-bus occupancy at burst granularity — the property
//!   DICE's bandwidth argument hinges on: every 72 B TAD access occupies the
//!   bus for 5 bursts whether it returns one useful line or two,
//! * bounded read/write queues (back-pressure),
//! * counters for activates/reads/writes/bytes feeding an energy model.
//!
//! The model is intentionally simpler than a cycle-accurate DRAM simulator
//! (no command-bus contention, no refresh) but preserves first-order latency
//! and bandwidth behaviour: row hits cost `tCAS`, row misses
//! `tRP+tRCD+tCAS`, and a channel's sustained throughput is capped by its
//! burst rate.
//!
//! # Example
//!
//! ```
//! use dice_dram::{AccessKind, DramConfig, DramDevice, Location};
//!
//! let mut hbm = DramDevice::new(DramConfig::stacked_l4());
//! let loc = Location { channel: 0, bank: 3, row: 17 };
//! let first = hbm.access(1000, AccessKind::Read, loc, 80);
//! let second = hbm.access(first.done, AccessKind::Read, loc, 80);
//! // Same row: the second access is a row-buffer hit and completes faster.
//! assert!(second.done - second.start < first.done - first.start);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod device;
mod energy;
mod stats;

pub use config::DramConfig;
pub use device::{AccessKind, AccessResult, DramDevice, Location};
pub use energy::{EnergyModel, Joules};
pub use stats::DramStats;

/// A point in simulated time, measured in CPU cycles (3.2 GHz in the
/// paper's configuration).
pub type Cycle = u64;
