//! DRAM organization and timing parameters (paper Table 2).

use crate::Cycle;

/// Static description of one DRAM device: geometry, timing and queue depth.
///
/// All timings are in CPU cycles at the paper's 3.2 GHz core clock. The two
/// stock configurations — [`DramConfig::stacked_l4`] and
/// [`DramConfig::ddr_main`] — reproduce Table 2; the `with_*` adjusters
/// build the sensitivity configurations of Table 8.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DramConfig {
    /// Human-readable name used in stats output.
    pub name: String,
    /// Number of independent channels.
    pub channels: u32,
    /// Banks per channel.
    pub banks_per_channel: u32,
    /// Data-bus width per channel in bytes (16 for the stacked L4's 128-bit
    /// bus, 8 for DDR's 64-bit bus).
    pub bus_bytes: u32,
    /// CPU cycles per data beat (one bus-width transfer). At 3.2 GHz CPU and
    /// 1.6 GT/s DDR signalling this is 2.
    pub cycles_per_beat: Cycle,
    /// Column access latency.
    pub t_cas: Cycle,
    /// Row-to-column (activate-to-read) delay.
    pub t_rcd: Cycle,
    /// Precharge latency.
    pub t_rp: Cycle,
    /// Minimum time a row stays open after activation.
    pub t_ras: Cycle,
    /// Row-buffer size in bytes (2 KB in the paper's Alloy layout).
    pub row_bytes: u32,
    /// Per-channel request-queue depth (96 in Table 2); further requests
    /// stall at issue.
    pub queue_depth: usize,
}

impl DramConfig {
    /// The paper's stacked-DRAM L4: 4 channels × 128-bit bus, 16 banks per
    /// channel, 800 MHz (DDR 1.6 GT/s) — ~102 GB/s peak, 8× the DDR main
    /// memory.
    #[must_use]
    pub fn stacked_l4() -> Self {
        Self {
            name: "stacked-l4".to_owned(),
            channels: 4,
            banks_per_channel: 16,
            bus_bytes: 16,
            cycles_per_beat: 2,
            t_cas: 44,
            t_rcd: 44,
            t_rp: 44,
            t_ras: 112,
            row_bytes: 2048,
            queue_depth: 96,
        }
    }

    /// The paper's DDR main memory: 1 channel × 64-bit bus, 16 banks,
    /// identical latency to the stacked DRAM (per stacked-memory specs) but
    /// 1/8 the bandwidth.
    #[must_use]
    pub fn ddr_main() -> Self {
        Self {
            name: "ddr-main".to_owned(),
            channels: 1,
            banks_per_channel: 16,
            bus_bytes: 8,
            cycles_per_beat: 2,
            t_cas: 44,
            t_rcd: 44,
            t_rp: 44,
            t_ras: 112,
            row_bytes: 2048,
            queue_depth: 96,
        }
    }

    /// Doubles the channel count (Table 8's "2x BW" configuration).
    #[must_use]
    pub fn with_double_channels(mut self) -> Self {
        self.channels *= 2;
        self.name.push_str("+2xbw");
        self
    }

    /// Halves all access latencies (Table 8's "50% latency" configuration).
    #[must_use]
    pub fn with_half_latency(mut self) -> Self {
        self.t_cas /= 2;
        self.t_rcd /= 2;
        self.t_rp /= 2;
        self.t_ras /= 2;
        self.name.push_str("+halflat");
        self
    }

    /// CPU cycles a `bytes`-sized transfer occupies the channel data bus.
    #[must_use]
    pub fn burst_cycles(&self, bytes: u32) -> Cycle {
        let beats = bytes.div_ceil(self.bus_bytes);
        Cycle::from(beats) * self.cycles_per_beat
    }

    /// Peak bandwidth across all channels, in bytes per CPU cycle.
    #[must_use]
    pub fn peak_bytes_per_cycle(&self) -> f64 {
        f64::from(self.channels) * f64::from(self.bus_bytes) / self.cycles_per_beat as f64
    }

    /// Latency of a row-buffer hit (CAS only).
    #[must_use]
    pub fn row_hit_latency(&self) -> Cycle {
        self.t_cas
    }

    /// Latency of a row-buffer miss (precharge + activate + CAS).
    #[must_use]
    pub fn row_miss_latency(&self) -> Cycle {
        self.t_rp + self.t_rcd + self.t_cas
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stacked_is_eight_times_ddr_bandwidth() {
        let l4 = DramConfig::stacked_l4();
        let mem = DramConfig::ddr_main();
        let ratio = l4.peak_bytes_per_cycle() / mem.peak_bytes_per_cycle();
        assert!((ratio - 8.0).abs() < 1e-9, "bandwidth ratio {ratio} != 8");
    }

    #[test]
    fn peak_bandwidth_matches_paper() {
        // 4 ch × 16 B per beat × 1.6e9 beats/s = 102.4 GB/s at 3.2 GHz:
        // bytes/cycle × 3.2e9 = bytes/s.
        let l4 = DramConfig::stacked_l4();
        let gbps = l4.peak_bytes_per_cycle() * 3.2e9 / 1e9;
        assert!((gbps - 102.4).abs() < 0.1, "L4 peak {gbps} GB/s");
        let mem = DramConfig::ddr_main();
        let gbps = mem.peak_bytes_per_cycle() * 3.2e9 / 1e9;
        assert!((gbps - 12.8).abs() < 0.1, "DDR peak {gbps} GB/s");
    }

    #[test]
    fn tad_transfer_is_five_bursts() {
        // An 80 B Alloy TAD (+neighbor tag) on a 16 B bus = 5 beats.
        let l4 = DramConfig::stacked_l4();
        assert_eq!(l4.burst_cycles(80), 10);
        assert_eq!(l4.burst_cycles(72), 10); // rounds up to 5 beats too
        assert_eq!(l4.burst_cycles(64), 8);
    }

    #[test]
    fn ddr_line_transfer_is_eight_bursts() {
        let mem = DramConfig::ddr_main();
        assert_eq!(mem.burst_cycles(64), 16);
    }

    #[test]
    fn adjusters_compose() {
        let c = DramConfig::stacked_l4()
            .with_double_channels()
            .with_half_latency();
        assert_eq!(c.channels, 8);
        assert_eq!(c.t_cas, 22);
        assert_eq!(c.t_ras, 56);
        assert!(c.name.contains("2xbw") && c.name.contains("halflat"));
    }

    #[test]
    fn latencies_match_table2() {
        let c = DramConfig::stacked_l4();
        assert_eq!(c.row_hit_latency(), 44);
        assert_eq!(c.row_miss_latency(), 132);
    }
}
