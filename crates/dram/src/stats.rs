//! Access statistics for one DRAM device.

use crate::Cycle;

/// Counters accumulated by [`DramDevice`](crate::DramDevice).
///
/// All counters are cumulative from device creation; the simulator snapshots
/// them at warm-up boundaries and subtracts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Read accesses serviced.
    pub reads: u64,
    /// Write accesses serviced.
    pub writes: u64,
    /// Row activations (row-buffer misses).
    pub activates: u64,
    /// Accesses that hit an open row.
    pub row_hits: u64,
    /// Total bytes transferred on the data buses.
    pub bytes: u64,
    /// Cycles any data bus was transferring (summed over channels).
    pub busy_cycles: Cycle,
    /// Requests delayed by a full per-channel queue.
    pub queue_stalls: u64,
    /// Sum of request latencies (submission to data completion).
    pub latency_sum: Cycle,
    /// Completion time of the latest request.
    pub last_done: Cycle,
    /// Cycles spent waiting for the bank's command pipeline (row cycles,
    /// tCCD, tRAS) summed over requests.
    pub bank_wait_sum: Cycle,
    /// Cycles data waited for a free data bus, summed over requests.
    pub bus_wait_sum: Cycle,
}

impl DramStats {
    /// Total accesses (reads + writes).
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Fraction of accesses that hit an open row, or 0 if idle.
    #[must_use]
    pub fn row_hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.accesses() as f64
        }
    }

    /// Mean access latency in cycles, or 0 if idle.
    #[must_use]
    pub fn mean_latency(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.accesses() as f64
        }
    }

    /// Counter-wise difference `self - earlier` (for warm-up exclusion).
    #[must_use]
    pub fn delta_since(&self, earlier: &DramStats) -> DramStats {
        DramStats {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            activates: self.activates - earlier.activates,
            row_hits: self.row_hits - earlier.row_hits,
            bytes: self.bytes - earlier.bytes,
            busy_cycles: self.busy_cycles - earlier.busy_cycles,
            queue_stalls: self.queue_stalls - earlier.queue_stalls,
            latency_sum: self.latency_sum - earlier.latency_sum,
            last_done: self.last_done,
            bank_wait_sum: self.bank_wait_sum - earlier.bank_wait_sum,
            bus_wait_sum: self.bus_wait_sum - earlier.bus_wait_sum,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_idle_device() {
        let s = DramStats::default();
        assert_eq!(s.row_hit_rate(), 0.0);
        assert_eq!(s.mean_latency(), 0.0);
        assert_eq!(s.accesses(), 0);
    }

    #[test]
    fn delta_subtracts_counters() {
        let early = DramStats { reads: 10, writes: 5, bytes: 100, ..DramStats::default() };
        let late = DramStats { reads: 30, writes: 15, bytes: 400, ..DramStats::default() };
        let d = late.delta_since(&early);
        assert_eq!(d.reads, 20);
        assert_eq!(d.writes, 10);
        assert_eq!(d.bytes, 300);
    }
}
