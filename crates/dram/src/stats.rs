//! Access statistics for one DRAM device.

use dice_obs::{impl_snapshot, ratio};

use crate::Cycle;

/// Counters accumulated by [`DramDevice`](crate::DramDevice).
///
/// All counters are cumulative from device creation; the simulator snapshots
/// them at warm-up boundaries and subtracts. Every field is monotonic except
/// `last_done`, a completion-time watermark that an interval delta carries
/// forward instead of subtracting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Read accesses serviced.
    pub reads: u64,
    /// Write accesses serviced.
    pub writes: u64,
    /// Row activations (row-buffer misses).
    pub activates: u64,
    /// Accesses that hit an open row.
    pub row_hits: u64,
    /// Total bytes transferred on the data buses.
    pub bytes: u64,
    /// Cycles any data bus was transferring (summed over channels).
    pub busy_cycles: Cycle,
    /// Requests delayed by a full per-channel queue.
    pub queue_stalls: u64,
    /// Sum of request latencies (submission to data completion).
    pub latency_sum: Cycle,
    /// Completion time of the latest request.
    pub last_done: Cycle,
    /// Cycles spent waiting for the bank's command pipeline (row cycles,
    /// tCCD, tRAS) summed over requests.
    pub bank_wait_sum: Cycle,
    /// Cycles data waited for a free data bus, summed over requests.
    pub bus_wait_sum: Cycle,
}

impl_snapshot!(DramStats {
    reads: Monotonic,
    writes: Monotonic,
    activates: Monotonic,
    row_hits: Monotonic,
    bytes: Monotonic,
    busy_cycles: Monotonic,
    queue_stalls: Monotonic,
    latency_sum: Monotonic,
    last_done: Watermark,
    bank_wait_sum: Monotonic,
    bus_wait_sum: Monotonic,
});

impl DramStats {
    /// Total accesses (reads + writes).
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Fraction of accesses that hit an open row, or 0 if idle.
    #[must_use]
    pub fn row_hit_rate(&self) -> f64 {
        ratio(self.row_hits, self.accesses())
    }

    /// Mean access latency in cycles, or 0 if idle.
    #[must_use]
    pub fn mean_latency(&self) -> f64 {
        ratio(self.latency_sum, self.accesses())
    }

    /// Counter-wise difference `self - earlier` (for warm-up exclusion).
    #[must_use]
    pub fn delta_since(&self, earlier: &DramStats) -> DramStats {
        dice_obs::delta(self, earlier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_idle_device() {
        let s = DramStats::default();
        assert_eq!(s.row_hit_rate(), 0.0);
        assert_eq!(s.mean_latency(), 0.0);
        assert_eq!(s.accesses(), 0);
    }

    #[test]
    fn delta_subtracts_counters() {
        let early = DramStats {
            reads: 10,
            writes: 5,
            bytes: 100,
            ..DramStats::default()
        };
        let late = DramStats {
            reads: 30,
            writes: 15,
            bytes: 400,
            ..DramStats::default()
        };
        let d = late.delta_since(&early);
        assert_eq!(d.reads, 20);
        assert_eq!(d.writes, 10);
        assert_eq!(d.bytes, 300);
    }

    #[test]
    fn delta_keeps_last_done_watermark() {
        let early = DramStats {
            last_done: 1_000,
            ..DramStats::default()
        };
        let late = DramStats {
            last_done: 9_000,
            ..DramStats::default()
        };
        assert_eq!(late.delta_since(&early).last_done, 9_000);
    }
}
