//! End-to-end integration tests: build whole systems from the public API
//! and check the cross-crate invariants the paper's story depends on.

use dice::core::Organization;
use dice::sim::{RunReport, SimConfig, System, WorkloadSet};
use dice::workloads::spec_table;

fn spec(name: &str) -> dice::workloads::WorkloadSpec {
    spec_table()
        .into_iter()
        .find(|w| w.name == name)
        .unwrap_or_else(|| panic!("{name}?"))
}

fn run(org: Organization, wl: &str, seed: u64) -> RunReport {
    let cfg = SimConfig::scaled(org, 512).with_records(4_000, 8_000);
    System::new(cfg, &WorkloadSet::rate(spec(wl), seed)).run()
}

const DICE: Organization = Organization::Dice { threshold: 36 };

#[test]
fn whole_system_is_deterministic() {
    let a = run(DICE, "soplex", 7);
    let b = run(DICE, "soplex", 7);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.l4.reads, b.l4.reads);
    assert_eq!(a.l4.free_lines, b.l4.free_lines);
    assert_eq!(a.mem_dram.bytes, b.mem_dram.bytes);
    assert_eq!(a.energy.total_joules(), b.energy.total_joules());
}

#[test]
fn different_seeds_differ() {
    let a = run(DICE, "soplex", 7);
    let b = run(DICE, "soplex", 8);
    assert_ne!(a.cycles, b.cycles);
}

#[test]
fn dice_helps_compressible_spatial_workloads() {
    let base = run(Organization::UncompressedAlloy, "gcc", 7);
    let dice = run(DICE, "gcc", 7);
    assert!(
        dice.weighted_speedup(&base) > 1.02,
        "DICE on gcc should win: {:.3}",
        dice.weighted_speedup(&base)
    );
    assert!(dice.l4.free_lines > 0);
    assert!(
        dice.l3.hit_rate() > base.l3.hit_rate(),
        "free pair lines should lift L3 hit rate"
    );
}

#[test]
fn dice_never_collapses_on_incompressible_data() {
    for wl in ["lbm", "libq"] {
        let base = run(Organization::UncompressedAlloy, wl, 7);
        let dice = run(DICE, wl, 7);
        let s = dice.weighted_speedup(&base);
        assert!(s > 0.9, "DICE must not tank {wl}: {s:.3}");
    }
}

#[test]
fn bai_thrashes_where_dice_does_not() {
    let base = run(Organization::UncompressedAlloy, "libq", 7);
    let bai = run(Organization::CompressedBai, "libq", 7);
    let dice = run(DICE, "libq", 7);
    let s_bai = bai.weighted_speedup(&base);
    let s_dice = dice.weighted_speedup(&base);
    assert!(s_bai < 0.9, "static BAI should hurt libq: {s_bai:.3}");
    assert!(
        s_dice > s_bai + 0.1,
        "DICE must avoid BAI's thrash: {s_dice:.3} vs {s_bai:.3}"
    );
}

#[test]
fn tsi_compression_never_delivers_pair_lines() {
    let tsi = run(Organization::CompressedTsi, "gcc", 7);
    assert_eq!(
        tsi.l4.free_lines, 0,
        "TSI separates spatial pairs by construction"
    );
}

#[test]
fn dice_installs_split_between_schemes() {
    let dice = run(DICE, "soplex", 7);
    let s = &dice.l4;
    assert!(s.installs_invariant > 0);
    assert!(s.installs_tsi > 0, "soplex has incompressible pages");
    assert!(s.installs_bai > 0, "soplex has compressible pages");
    // Roughly half of installs need no decision (TSI == BAI).
    let inv_frac = s.installs_invariant as f64 / s.installs() as f64;
    assert!(
        (0.40..0.60).contains(&inv_frac),
        "invariant fraction {inv_frac:.2}"
    );
}

#[test]
fn cip_predicts_well_on_page_correlated_data() {
    let dice = run(DICE, "soplex", 7);
    assert!(dice.cip_predictions > 100);
    assert!(
        dice.cip_accuracy > 0.80,
        "CIP accuracy {:.3}",
        dice.cip_accuracy
    );
}

#[test]
fn scc_burns_bandwidth() {
    let base = run(Organization::UncompressedAlloy, "gcc", 7);
    let scc = run(Organization::Scc, "gcc", 7);
    let dice = run(DICE, "gcc", 7);
    // SCC needs ~4x the probes per request; it must not beat DICE.
    assert!(scc.l4_dram.reads > 2 * base.l4_dram.reads);
    assert!(dice.weighted_speedup(&base) > scc.weighted_speedup(&base));
}

#[test]
fn doubling_capacity_and_bandwidth_helps() {
    let wl = WorkloadSet::rate(spec("gcc"), 7);
    let cfg = SimConfig::scaled(Organization::UncompressedAlloy, 512).with_records(4_000, 8_000);
    let base = System::new(cfg.clone(), &wl).run();
    let double = System::new(
        cfg.with_double_l4_capacity().with_double_l4_bandwidth(),
        &wl,
    )
    .run();
    assert!(double.weighted_speedup(&base) > 1.0);
}

#[test]
fn energy_tracks_traffic() {
    let base = run(Organization::UncompressedAlloy, "cc_twi", 7);
    let tsi = run(Organization::CompressedTsi, "cc_twi", 7);
    // TSI's higher hit rate must reduce memory reads and hence DDR energy
    // per unit of work (absolute joules depend on runtime, so compare
    // traffic directly).
    assert!(tsi.mem_dram.reads < base.mem_dram.reads);
}

#[test]
fn weighted_speedup_is_one_against_self() {
    let r = run(DICE, "wrf", 3);
    assert!((r.weighted_speedup(&r) - 1.0).abs() < 1e-12);
}

#[test]
fn report_counters_are_consistent() {
    let r = run(DICE, "milc", 9);
    assert_eq!(r.core_instructions.len(), 8);
    assert_eq!(r.core_cycles.len(), 8);
    assert!(r.core_instructions.iter().all(|&i| i > 0));
    assert!(r.l4.read_hits <= r.l4.reads);
    assert!(r.l4.second_probes <= r.l4.reads + r.l4.writebacks);
    assert!(r.l4_dram.row_hits <= r.l4_dram.accesses());
    assert!(r.capacity_ratio() > 0.0);
}
