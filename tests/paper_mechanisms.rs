//! Mechanism-level integration tests: drive the DRAM-cache controller with
//! the *real* compression pipeline (synthesized values → FPC/BDI sizes) and
//! verify the specific mechanisms each paper section describes.

use dice::compress::{compressed_size, pair_compressed_size};
use dice::core::{
    DramCacheConfig, DramCacheController, Indexer, Organization, SizeInfo, TagVariant,
};
use dice::workloads::{line_data, spec_table, DataModel, PageClass, SplitMix64};

fn controller(org: Organization) -> DramCacheController {
    DramCacheController::new(DramCacheConfig::with_capacity(org, 1 << 20)) // 16k sets
}

fn oracle(wl: &str) -> DataModel {
    let spec = spec_table().into_iter().find(|w| w.name == wl).unwrap();
    DataModel::new(&spec, 99)
}

/// §4.2/§6.2 — the 36 B threshold is exactly BDI's B4D2 plus base sharing.
#[test]
fn b4d2_pairs_motivate_the_threshold() {
    let mut found = false;
    for page in 0..64u64 {
        let a = line_data(5, PageClass::Strided, page * 64 + 6);
        let b = line_data(5, PageClass::Strided, page * 64 + 7);
        if compressed_size(&a) == 36 {
            found = true;
            assert!(
                pair_compressed_size(&a, &b) <= 68,
                "a 36 B B4D2 line must pair into <= 68 B via base sharing"
            );
        }
    }
    assert!(found, "expected at least one 36 B strided line");
}

/// §5.2 — insertion routes by compressed size against the threshold.
#[test]
fn insertion_routes_by_real_compressed_size() {
    let mut l4 = controller(Organization::Dice { threshold: 36 });
    let mut data = oracle("soplex");
    let sets = l4.num_sets();
    let mut routed_bai = 0u64;
    let mut routed_tsi = 0u64;
    for i in 0..4_000u64 {
        // Non-invariant lines only: even line addresses with the bit just
        // above the index field set (so TSI != BAI), varied pages.
        let line = ((i << 1) | 1) * sets * 2 + sets + (i % (sets / 2)) * 2;
        let size = data.single_size(line);
        let before = (l4.stats().installs_bai, l4.stats().installs_tsi);
        l4.fill(line, false, None, &mut data);
        let after = (l4.stats().installs_bai, l4.stats().installs_tsi);
        if size <= 36 {
            assert_eq!(after.0, before.0 + 1, "size {size} must go BAI");
            routed_bai += 1;
        } else {
            assert_eq!(after.1, before.1 + 1, "size {size} must go TSI");
            routed_tsi += 1;
        }
    }
    assert!(
        routed_bai > 100 && routed_tsi > 100,
        "soplex should exercise both routes"
    );
}

/// §5.1 — a compressed pair read returns both lines in one probe.
#[test]
fn pair_read_is_one_probe_two_lines() {
    let mut l4 = controller(Organization::Dice { threshold: 36 });
    let mut data = oracle("gcc");
    // Find a compressible page (zero class compresses to 1 B).
    let mut line = None;
    for page in 0..512u64 {
        let l = (1 << 14) + page * 64; // non-invariant region
        if data.single_size(l) <= 36 && data.single_size(l + 1) <= 36 {
            line = Some(l);
            break;
        }
    }
    let line = line.expect("gcc has compressible pages");
    l4.fill(line, false, None, &mut data);
    l4.fill(line + 1, false, None, &mut data);
    let r = l4.read(line);
    assert!(r.hit);
    assert_eq!(r.probes.len(), 1, "one 80 B TAD transfer");
    assert_eq!(r.free_lines, vec![line + 1], "partner delivered free");
}

/// §5.1 — the Alloy neighbor tag avoids second probes on misses; §6.6 —
/// KNL pays them.
#[test]
fn neighbor_tag_versus_knl_probe_counts() {
    let mut data = oracle("gcc");
    let mk = |variant: TagVariant| {
        let mut cfg = DramCacheConfig::with_capacity(Organization::Dice { threshold: 36 }, 1 << 20);
        cfg.tag_variant = variant;
        DramCacheController::new(cfg)
    };
    let mut alloy = mk(TagVariant::Alloy);
    let mut knl = mk(TagVariant::Knl);
    let sets = alloy.num_sets();
    let mut alloy_probes = 0;
    let mut knl_probes = 0;
    for i in 0..1_000u64 {
        // Even lines with the bit above the index field set: TSI != BAI.
        let line = ((i << 1) | 1) * sets * 2 + sets + (i % (sets / 2)) * 2;
        alloy_probes += alloy.read(line).probes.len();
        knl_probes += knl.read(line).probes.len();
    }
    assert_eq!(alloy_probes, 1_000, "Alloy misses need one probe");
    assert_eq!(
        knl_probes, 2_000,
        "KNL misses must check both candidate sets"
    );
    let _ = data.single_size(0);
}

/// §4.3 — dynamic tags: a set holds many tiny lines, up to the format caps.
#[test]
fn compressed_sets_pack_many_tiny_lines() {
    let mut l4 = controller(Organization::CompressedTsi);
    let mut data = oracle("cc_twi");
    let sets = l4.num_sets();
    // Hammer one TSI set with zero-class lines from many pages.
    let mut packed = 0u64;
    for i in 0..200u64 {
        let line = i * sets; // all map to set 0 under TSI
        if data.single_size(line) <= 8 {
            l4.fill(line, false, None, &mut data);
            packed += 1;
        }
    }
    assert!(packed > 10, "cc_twi should supply tiny lines");
    let resident = l4.valid_lines();
    assert!(
        resident >= 5,
        "set 0 should pack several tiny lines, got {resident}"
    );
    assert!(resident as usize <= dice::core::MAX_LINES_PER_SET);
}

/// Figure 6 invariants hold for the production indexer at cache scale.
#[test]
fn bai_invariants_at_scale() {
    let ix = Indexer::new(1 << 24); // 1 GB worth of sets
    let mut rng = SplitMix64::new(3);
    for _ in 0..100_000 {
        let line = rng.next_u64() >> 8;
        assert_eq!(ix.bai(line & !1), ix.bai(line | 1));
        assert_eq!(ix.tsi(line) & !1, ix.bai(line) & !1);
        assert_eq!(ix.tsi(line) / 28, ix.bai(line) / 28, "same DRAM row");
    }
}

/// §7.3 — SCC pays 4 probes per hit, 3 per miss.
#[test]
fn scc_probe_accounting() {
    let mut l4 = controller(Organization::Scc);
    let mut data = oracle("gcc");
    l4.fill(1234, false, None, &mut data);
    assert_eq!(l4.read(1234).probes.len(), 4);
    assert_eq!(l4.read(999_999).probes.len(), 3);
}

/// The write path: dirty evictions reach memory exactly once.
#[test]
fn dirty_lines_write_back_to_memory_once() {
    let mut l4 = controller(Organization::UncompressedAlloy);
    let mut data = oracle("lbm"); // mostly incompressible
    let sets = l4.num_sets();
    let out = l4.writeback(42, &mut data);
    assert!(out.memory_writebacks.is_empty());
    // Conflict evicts the dirty line.
    let out = l4.fill(42 + sets, false, None, &mut data);
    assert_eq!(out.memory_writebacks, vec![42]);
    // Re-dirtying the line re-installs it, displacing the clean conflict
    // line without any further memory write.
    let out = l4.writeback(42, &mut data);
    assert!(
        out.memory_writebacks.is_empty(),
        "clean victims never reach memory"
    );
}
