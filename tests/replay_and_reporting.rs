//! Integration tests for the trace-replay path and the reporting layer —
//! the public surfaces downstream users touch first.

use dice::core::Organization;
use dice::sim::{SimConfig, System, WorkloadSet};
use dice::workloads::{
    load_trace, save_trace, spec_table, MixDataModel, RecordSource, ReplaySource, TraceGen,
    TraceRecord,
};

fn spec(name: &str) -> dice::workloads::WorkloadSpec {
    spec_table().into_iter().find(|w| w.name == name).unwrap()
}

fn small_cfg(org: Organization) -> SimConfig {
    SimConfig::scaled(org, 1024).with_records(2_000, 4_000)
}

/// Recording a generator and replaying it must reproduce the generated
/// run exactly: same cycles, same cache behaviour.
#[test]
fn replayed_trace_matches_generated_run() {
    let s = spec("gcc");
    let cfg = small_cfg(Organization::Dice { threshold: 36 });

    // Reference: the generator-driven system.
    let reference = System::new(cfg.clone(), &WorkloadSet::rate(s.clone(), 9)).run();

    // Record exactly the records the run consumed (warmup + measure), then
    // replay them through `with_sources`.
    let total = cfg.warmup_records + cfg.measure_records;
    let sources: Vec<Box<dyn RecordSource>> = (0..8)
        .map(|core| {
            let mut g = TraceGen::with_scale(&s, core, 9, cfg.scale);
            let records: Vec<TraceRecord> = (0..total).map(|_| g.next_record()).collect();
            Box::new(ReplaySource::new(records)) as Box<dyn RecordSource>
        })
        .collect();
    let data = MixDataModel::new(vec![s.values; 8], 9 ^ 0xda7a);
    let replayed = System::with_sources(cfg, "gcc", sources, data).run();

    assert_eq!(replayed.cycles, reference.cycles);
    assert_eq!(replayed.l4.reads, reference.l4.reads);
    assert_eq!(replayed.l4.free_lines, reference.l4.free_lines);
    assert_eq!(replayed.mem_dram.bytes, reference.mem_dram.bytes);
}

/// Traces survive a trip through the text file format.
#[test]
fn trace_files_round_trip_through_disk() {
    let dir = std::env::temp_dir().join("dice-integration-trace");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.trace");

    let mut g = TraceGen::with_scale(&spec("mcf"), 2, 77, 512);
    let records: Vec<TraceRecord> = (0..5_000).map(|_| g.next_record()).collect();
    save_trace(&path, &records).unwrap();
    let loaded = load_trace(&path).unwrap();
    assert_eq!(loaded, records);

    let mut replay = ReplaySource::new(loaded);
    for r in &records {
        assert_eq!(replay.next_record(), *r);
    }
}

/// The reporting layer's energy composition is self-consistent across
/// organizations: energy = L4 + memory, EDP = energy × delay.
#[test]
fn energy_report_identities_hold() {
    for org in [
        Organization::UncompressedAlloy,
        Organization::Dice { threshold: 36 },
    ] {
        let r = System::new(small_cfg(org), &WorkloadSet::rate(spec("milc"), 3)).run();
        let e = &r.energy;
        assert!((e.total_joules() - (e.l4_joules + e.mem_joules)).abs() < 1e-15);
        let expected_edp = e.total_joules() * r.cycles as f64 / 3.2e9;
        assert!((e.edp() - expected_edp).abs() < 1e-12);
        assert!(e.power_watts() > 0.0);
    }
}

/// Weighted speedup is symmetric-consistent: s(a,b) ≈ 1 / s(b,a) for
/// uniform per-core ratios, and transitive orderings agree with cycles.
#[test]
fn weighted_speedup_sanity() {
    let wl = WorkloadSet::rate(spec("soplex"), 5);
    let base = System::new(small_cfg(Organization::UncompressedAlloy), &wl).run();
    let dice = System::new(small_cfg(Organization::Dice { threshold: 36 }), &wl).run();
    let forward = dice.weighted_speedup(&base);
    let backward = base.weighted_speedup(&dice);
    // Rate-mode cores are near-uniform, so the product is close to 1.
    assert!(
        (forward * backward - 1.0).abs() < 0.05,
        "{forward} * {backward}"
    );
    // Direction agrees with total cycles.
    assert_eq!(forward > 1.0, dice.cycles < base.cycles);
}

/// Capacity sampling reports coherent numbers for every organization.
#[test]
fn capacity_reporting_is_coherent() {
    for org in [
        Organization::UncompressedAlloy,
        Organization::CompressedTsi,
        Organization::Dice { threshold: 36 },
    ] {
        let r = System::new(small_cfg(org), &WorkloadSet::rate(spec("cc_twi"), 5)).run();
        assert!(r.avg_valid_lines > 0.0, "{org:?}");
        assert!(r.avg_occupied_sets > 0.0, "{org:?}");
        assert!(r.avg_valid_lines >= r.avg_occupied_sets - 1e-9, "{org:?}");
        let ratio = r.capacity_ratio();
        if org == Organization::UncompressedAlloy {
            assert!((ratio - 1.0).abs() < 1e-9, "uncompressed ratio {ratio}");
        } else {
            assert!(ratio >= 1.0, "{org:?} ratio {ratio}");
        }
    }
}
